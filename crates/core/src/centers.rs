//! Dynamic key directional center extraction (paper Alg. 1, Sec. III-D).
//!
//! Keys whose directions are (anti-)collinear — `|cos| > threshold` — share a
//! **directional center**: the earlier key they align with. A position's
//! attention score can then be approximated as
//! `q·kᵢᵀ ≈ (q·k_cid[i]ᵀ) · dnorm[i]` where
//! `dnorm[i] = ±‖kᵢ‖ / ‖k_cid[i]‖`, so active-position identification only
//! touches the (few) center keys instead of the whole key cache.
//!
//! Centers are selected *from* the keys, so no extra vector storage is needed
//! — only the scalar arrays `cid`, `norm`, `dnorm` (part of the hardware's
//! `G` tensor).

use crate::kv::KeyLookup;
use lad_math::vector;

/// The paper's empirical collinearity threshold.
pub const DEFAULT_COLLINEARITY_THRESHOLD: f64 = 0.98;

/// Book-keeping for directional centers over a growing key sequence.
///
/// # Example
///
/// ```
/// use lad_core::centers::CenterBook;
///
/// let mut book = CenterBook::new(0.98);
/// let keys = vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![0.0, 1.0]];
/// book.add_key(&keys[..1]); // key 0 becomes a center
/// book.add_key(&keys[..2]); // key 1 is collinear with key 0
/// book.add_key(&keys[..3]); // key 2 is orthogonal -> a new center
/// assert_eq!(book.centers(), &[0, 2]);
/// assert_eq!(book.cid(1), 0);
/// assert!((book.dnorm(1) - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CenterBook {
    threshold: f64,
    cid: Vec<usize>,
    norm: Vec<f64>,
    dnorm: Vec<f64>,
    centers: Vec<usize>,
}

impl CenterBook {
    /// Creates an empty book with the given collinearity threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1`.
    pub fn new(threshold: f64) -> CenterBook {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "CenterBook: threshold must be in (0, 1]"
        );
        CenterBook {
            threshold,
            cid: Vec::new(),
            norm: Vec::new(),
            dnorm: Vec::new(),
            centers: Vec::new(),
        }
    }

    /// Number of keys registered.
    pub fn len(&self) -> usize {
        self.cid.len()
    }

    /// `true` when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.cid.is_empty()
    }

    /// Positions currently serving as directional centers, ascending.
    pub fn centers(&self) -> &[usize] {
        &self.centers
    }

    /// Center id of `position` (`cid[i] == i` when the key is its own center).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cid(&self, position: usize) -> usize {
        self.cid[position]
    }

    /// L2 norm recorded for `position`'s key.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn norm(&self, position: usize) -> f64 {
        self.norm[position]
    }

    /// Signed norm ratio `±‖kᵢ‖/‖k_cid[i]‖` (negative when anti-collinear).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn dnorm(&self, position: usize) -> f64 {
        self.dnorm[position]
    }

    /// Registers the newest key (paper Alg. 1). `keys` is the full key cache
    /// with the new key last; only keys at center positions are read,
    /// mirroring the EAS.5 sub-task's memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if `keys.num_keys() != self.len() + 1`.
    pub fn add_key(&mut self, keys: &(impl KeyLookup + ?Sized)) {
        assert_eq!(
            keys.num_keys(),
            self.len() + 1,
            "add_key: keys must contain exactly one unregistered key"
        );
        let n = self.len();
        let new_key = keys.key_at(n);
        let new_norm = f64::from(vector::norm(new_key));
        self.norm.push(new_norm);

        let mut max_cos = 0.0f64;
        let mut max_pos = 0usize;
        if new_norm > 0.0 {
            for &c in &self.centers {
                let center_norm = self.norm[c];
                if center_norm == 0.0 {
                    continue;
                }
                let cos =
                    f64::from(vector::dot(new_key, keys.key_at(c))) / (new_norm * center_norm);
                if cos.abs() > max_cos.abs() {
                    max_cos = cos;
                    max_pos = c;
                }
            }
        }

        if max_cos > self.threshold {
            self.cid.push(max_pos);
            self.dnorm.push(new_norm / self.norm[max_pos]);
        } else if max_cos < -self.threshold {
            self.cid.push(max_pos);
            self.dnorm.push(-new_norm / self.norm[max_pos]);
        } else {
            self.cid.push(n);
            self.dnorm.push(1.0);
            self.centers.push(n);
        }
    }

    /// Approximates all `n` attention scores from the `q·k_c` dot products of
    /// the centers alone: `s[i] ≈ center_scores[cid[i]] · dnorm[i]`.
    ///
    /// `center_scores` maps center *position* to its exact score; typically
    /// produced by [`CenterBook::score_centers`].
    pub fn approx_scores(&self, center_scores: &impl Fn(usize) -> f64) -> Vec<f64> {
        (0..self.len())
            .map(|i| center_scores(self.cid[i]) * self.dnorm[i])
            .collect()
    }

    /// Computes the exact scores of the center keys only:
    /// `q_scaled · k_c` for each center `c`. This is EAS.1's traffic — the
    /// only key reads the identification pass needs.
    pub fn score_centers(
        &self,
        q_scaled: &[f32],
        keys: &(impl KeyLookup + ?Sized),
    ) -> Vec<(usize, f64)> {
        self.centers
            .iter()
            .map(|&c| (c, f64::from(vector::dot(q_scaled, keys.key_at(c)))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(book: &mut CenterBook, keys: &[Vec<f32>]) {
        for i in 0..keys.len() {
            if i >= book.len() {
                book.add_key(&keys[..=i]);
            }
        }
    }

    #[test]
    fn first_key_is_its_own_center() {
        let mut book = CenterBook::new(0.98);
        book.add_key(&[vec![3.0, 4.0]][..]);
        assert_eq!(book.centers(), &[0]);
        assert_eq!(book.cid(0), 0);
        assert_eq!(book.dnorm(0), 1.0);
        assert!((book.norm(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_key_maps_to_center() {
        let mut book = CenterBook::new(0.98);
        feed(&mut book, &[vec![1.0, 0.0], vec![4.0, 0.0]]);
        assert_eq!(book.centers(), &[0]);
        assert_eq!(book.cid(1), 0);
        assert!((book.dnorm(1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn anti_collinear_key_gets_negative_dnorm() {
        let mut book = CenterBook::new(0.98);
        feed(&mut book, &[vec![1.0, 0.0], vec![-2.0, 0.0]]);
        assert_eq!(book.cid(1), 0);
        assert!((book.dnorm(1) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_key_becomes_new_center() {
        let mut book = CenterBook::new(0.98);
        feed(&mut book, &[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]]);
        // 45-degree key (cos ~0.707 to both) is below threshold -> center.
        assert_eq!(book.centers(), &[0, 1, 2]);
    }

    #[test]
    fn threshold_controls_grouping() {
        // cos between (1,0) and (1, 0.1) is ~0.995: grouped at 0.98 but
        // separate at 0.999.
        let keys = vec![vec![1.0, 0.0], vec![1.0, 0.1]];
        let mut loose = CenterBook::new(0.98);
        feed(&mut loose, &keys);
        assert_eq!(loose.centers().len(), 1);
        let mut tight = CenterBook::new(0.999);
        feed(&mut tight, &keys);
        assert_eq!(tight.centers().len(), 2);
    }

    #[test]
    fn zero_key_becomes_center_not_member() {
        let mut book = CenterBook::new(0.98);
        feed(&mut book, &[vec![1.0, 0.0], vec![0.0, 0.0]]);
        // A zero key has no direction; it must not alias another center.
        assert_eq!(book.cid(1), 1);
        assert_eq!(book.centers(), &[0, 1]);
    }

    #[test]
    fn approx_scores_reconstruct_collinear_exactly() {
        let mut book = CenterBook::new(0.98);
        let keys = vec![vec![2.0, 0.0], vec![6.0, 0.0], vec![-1.0, 0.0]];
        feed(&mut book, &keys);
        let q = vec![1.5f32, 0.0];
        let centers = book.score_centers(&q, &keys);
        let lookup = |c: usize| {
            centers
                .iter()
                .find(|(pos, _)| *pos == c)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let approx = book.approx_scores(&lookup);
        // Perfectly collinear keys reconstruct exactly.
        assert!((approx[0] - 3.0).abs() < 1e-6);
        assert!((approx[1] - 9.0).abs() < 1e-6);
        assert!((approx[2] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn score_centers_touches_only_centers() {
        let mut book = CenterBook::new(0.98);
        let keys = vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![0.0, 3.0]];
        feed(&mut book, &keys);
        let scored = book.score_centers(&[1.0, 1.0], &keys);
        let positions: Vec<usize> = scored.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "exactly one unregistered key")]
    fn add_key_requires_incremental_feed() {
        let mut book = CenterBook::new(0.98);
        book.add_key(&[vec![1.0], vec![2.0]][..]);
    }
}
