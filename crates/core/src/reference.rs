//! Reference attention implementations used as oracles.
//!
//! * [`exact_attention`] — the standard softmax attention of paper Eq. 2.
//! * [`pwl_attention`] — paper Eq. 3: softmax's `exp` replaced by the PWL
//!   approximation, every position using its *actual* interval coefficients.
//!
//! LAD with oracle identification must match [`pwl_attention`] bit-for-bit up
//! to accumulation order (the core correctness invariant), and both must stay
//! close to [`exact_attention`] (the accuracy claim).

use crate::kv::KvCache;
use lad_math::pwl::PwlExp;

/// Scales a query by `1/√d` (the attention temperature).
pub fn scale_query(q: &[f32]) -> Vec<f32> {
    let scale = 1.0 / (q.len() as f32).sqrt();
    q.iter().map(|&x| x * scale).collect()
}

/// Raw scaled scores `q·kᵢ / √d` for every cached position, read through the
/// cache's precision-aware score kernel: bit-identical to the historic
/// sequential-dot path on `f32` caches, half the key traffic on fp16 ones.
pub fn scores(q: &[f32], kv: &KvCache) -> Vec<f64> {
    let qs = scale_query(q);
    let mut out = Vec::with_capacity(kv.len());
    kv.score_keys_into(&qs, &mut out);
    out
}

/// Standard softmax attention output (paper Eq. 2).
///
/// # Panics
///
/// Panics if the cache is empty or `q.len() != kv.dim()`.
pub fn exact_attention(q: &[f32], kv: &KvCache) -> Vec<f32> {
    assert!(!kv.is_empty(), "exact_attention: empty KV cache");
    assert_eq!(q.len(), kv.dim(), "exact_attention: query dim mismatch");
    let s = scores(q, kv);
    let m = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut num = vec![0.0f64; kv.dim()];
    let mut den = 0.0f64;
    for (i, &si) in s.iter().enumerate() {
        let w = (si - m).exp();
        den += w;
        kv.value_axpy(i, w, &mut num);
    }
    num.into_iter().map(|x| (x / den) as f32).collect()
}

/// Direct piecewise-linear attention (paper Eq. 3): every position weighted
/// by `aᵢ(sᵢ − m) + bᵢ` with `(aᵢ, bᵢ)` the coefficients of the interval its
/// score actually falls in.
///
/// # Panics
///
/// Panics if the cache is empty or `q.len() != kv.dim()`.
pub fn pwl_attention(q: &[f32], kv: &KvCache, pwl: &PwlExp) -> Vec<f32> {
    let (out, _) = pwl_attention_detailed(q, kv, pwl);
    out
}

/// Like [`pwl_attention`] but also returns the interval index assigned to each
/// position — the ground truth for active-position identification tests.
///
/// # Panics
///
/// Panics if the cache is empty or `q.len() != kv.dim()`.
pub fn pwl_attention_detailed(q: &[f32], kv: &KvCache, pwl: &PwlExp) -> (Vec<f32>, Vec<usize>) {
    assert!(!kv.is_empty(), "pwl_attention: empty KV cache");
    assert_eq!(q.len(), kv.dim(), "pwl_attention: query dim mismatch");
    let s = scores(q, kv);
    let m = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut num = vec![0.0f64; kv.dim()];
    let mut den = 0.0f64;
    let mut intervals = Vec::with_capacity(s.len());
    for (i, &si) in s.iter().enumerate() {
        let id = pwl.interval_of(si - m);
        intervals.push(id);
        let (a, b) = pwl.coeffs(id);
        let w = a * (si - m) + b;
        den += w;
        kv.value_axpy(i, w, &mut num);
    }
    (
        num.into_iter().map(|x| (x / den) as f32).collect(),
        intervals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::{vector, Rng};

    fn random_kv(rng: &mut Rng, n: usize, d: usize) -> KvCache {
        let mut kv = KvCache::new(d);
        for _ in 0..n {
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            kv.push(&k, &v);
        }
        kv
    }

    #[test]
    fn exact_attention_single_position_returns_value() {
        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 0.0], &[5.0, -3.0]);
        let out = exact_attention(&[1.0, 1.0], &kv);
        assert_eq!(out, vec![5.0, -3.0]);
    }

    #[test]
    fn exact_attention_is_convex_combination() {
        let mut kv = KvCache::new(1);
        kv.push(&[1.0], &[0.0]);
        kv.push(&[-1.0], &[10.0]);
        let out = exact_attention(&[2.0], &kv);
        assert!(out[0] > 0.0 && out[0] < 10.0);
    }

    #[test]
    fn exact_attention_dominant_score_wins() {
        let mut kv = KvCache::new(2);
        kv.push(&[20.0, 0.0], &[1.0, 0.0]);
        kv.push(&[-20.0, 0.0], &[0.0, 1.0]);
        let out = exact_attention(&[10.0, 0.0], &kv);
        assert!(out[0] > 0.999);
        assert!(out[1] < 0.001);
    }

    #[test]
    fn pwl_close_to_exact_on_random_inputs() {
        let pwl = PwlExp::accurate_default();
        let mut rng = Rng::new(31);
        for _ in 0..20 {
            let kv = random_kv(&mut rng, 48, 16);
            let q = rng.normal_vec(16, 1.0);
            let exact = exact_attention(&q, &kv);
            let approx = pwl_attention(&q, &kv, &pwl);
            let rel = vector::relative_l2(&approx, &exact);
            assert!(rel < 0.02, "relative error {rel}");
        }
    }

    #[test]
    fn pwl_detailed_intervals_match_partition() {
        let pwl = PwlExp::paper_default();
        let mut rng = Rng::new(32);
        let kv = random_kv(&mut rng, 32, 8);
        let q = rng.normal_vec(8, 1.0);
        let s = scores(&q, &kv);
        let m = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (_, intervals) = pwl_attention_detailed(&q, &kv, &pwl);
        for (i, &id) in intervals.iter().enumerate() {
            assert_eq!(id, pwl.interval_of(s[i] - m));
        }
    }

    #[test]
    fn scores_apply_temperature() {
        let mut kv = KvCache::new(4);
        kv.push(&[2.0; 4], &[0.0; 4]);
        let s = scores(&[1.0; 4], &kv);
        // q·k = 8, scaled by 1/√4 = 0.5 -> 4.
        assert!((s[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty KV cache")]
    fn empty_cache_panics() {
        exact_attention(&[1.0], &KvCache::new(1));
    }

    #[test]
    fn f16_cache_attention_is_close_to_f32() {
        use crate::kv::KvPrecision;
        let mut rng = Rng::new(77);
        for _ in 0..10 {
            let d = 16;
            let mut kv32 = KvCache::new(d);
            let mut kv16 = KvCache::with_precision(d, KvPrecision::F16);
            for _ in 0..40 {
                let k = rng.normal_vec(d, 1.0);
                let v = rng.normal_vec(d, 1.0);
                kv32.push(&k, &v);
                kv16.push(&k, &v);
            }
            let q = rng.normal_vec(d, 1.0);
            let exact = exact_attention(&q, &kv32);
            let half = exact_attention(&q, &kv16);
            // fp16 carries 11 significant bits; keys and values each
            // contribute ≤ 2^-11 relative, softmax re-normalisation keeps the
            // output a convex combination of (quantised) values.
            let rel = vector::relative_l2(&half, &exact);
            assert!(rel < 5e-3, "relative error {rel}");
        }
    }

    #[test]
    fn f16_attention_is_deterministic_across_kernels() {
        use crate::kv::KvPrecision;
        use lad_math::{with_kernel, Kernel};
        let mut rng = Rng::new(78);
        let d = 16;
        let mut kv = KvCache::with_precision(d, KvPrecision::F16);
        for _ in 0..33 {
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            kv.push(&k, &v);
        }
        let q = rng.normal_vec(d, 1.0);
        let scalar = with_kernel(Kernel::Scalar, || exact_attention(&q, &kv));
        let simd = with_kernel(Kernel::Simd, || exact_attention(&q, &kv));
        // The SIMD fp16 dot reorders the in-dot sum: outputs agree to
        // rounding, not necessarily bit-for-bit.
        let rel = vector::relative_l2(&simd, &scalar);
        assert!(rel < 1e-5, "relative error {rel}");
    }
}
