//! # LAD — Locality Aware Decoding
//!
//! Implementation of the attention algorithm from *"LAD: Efficient
//! Accelerator for Generative Inference of LLM with Locality Aware Decoding"*
//! (HPCA 2025).
//!
//! LAD exploits **inter-decoding-step numerical locality**: a position's
//! attention score keeps falling into the same sub-interval of `(-inf, 0]`
//! across decoding steps. Replacing softmax's `exp` with a piecewise-linear
//! approximation turns the attention output into a linear functional of the
//! keys and values, so every position that stays in its **mode interval** can
//! be folded into six fixed-size intermediate caches (`A`–`F`, [`cache`]).
//! Each decoding step then reads only the keys/values of **active positions**
//! — the handful whose score left its mode interval — cutting KV-cache
//! traffic from `O(n·d)` to `O(|J|·d)`.
//!
//! ## Module map
//!
//! | module | paper section | content |
//! |---|---|---|
//! | [`kv`] | Eq. 1 | the per-head KV cache |
//! | [`modes`] | Sec. III-E | interval counters and mode tracking |
//! | [`centers`] | Alg. 1 | dynamic key directional centers |
//! | [`cache`] | Eq. 4–6 | the six intermediate caches |
//! | [`decoder`] | Sec. III-E, Fig. 3 | the per-step LAD state machine |
//! | [`mod@reference`] | Eq. 2–3 | exact and direct-PWL oracles |
//! | [`locality`] | Sec. II-B, Fig. 2 | numerical-locality analysis |
//! | [`stats`] | Sec. IV | per-step instrumentation for the accelerator |
//! | [`pool`] | — | shared two-level decode worker pool (batch × heads) |
//!
//! ## Quickstart
//!
//! ```
//! use lad_core::decoder::{LadAttention, LadConfig};
//! use lad_math::pwl::PwlExp;
//! use lad_math::Rng;
//!
//! let dim = 32;
//! let mut head = LadAttention::new(dim, LadConfig::new(PwlExp::accurate_default()));
//! let mut rng = Rng::new(7);
//! for _ in 0..64 {
//!     let q = rng.normal_vec(dim, 1.0);
//!     let k = rng.normal_vec(dim, 1.0);
//!     let v = rng.normal_vec(dim, 1.0);
//!     let step = head.step(&q, &k, &v);
//!     assert_eq!(step.output.len(), dim);
//! }
//! // Only a fraction of cached positions needed their keys/values re-read.
//! assert!(head.kv().len() == 64);
//! ```

pub mod audit;
pub mod cache;
pub mod centers;
pub mod decoder;
pub mod kv;
pub mod locality;
pub mod modes;
pub mod pool;
pub mod reference;
pub mod stats;

pub use audit::{audit_stream, AuditReport, QkvStream, QkvTriple};
pub use cache::IntermediateCache;
pub use centers::CenterBook;
pub use decoder::{Identification, LadAttention, LadConfig, StepOutput};
pub use kv::KvCache;
pub use locality::{LocalityAnalyzer, LocalityReport};
pub use modes::ModeTracker;
pub use pool::{PoolMetrics, PoolScope, TaskLevel, WorkerPool};
pub use stats::{StatsSummary, StepStats};
