//! Shared decode worker pool.
//!
//! Batch decoding (sequence-level tasks) and the per-layer head fan-out
//! (head-level tasks) used to run on *separate* `std::thread::scope` spawns,
//! which forced them to be mutually exclusive: batch workers pinned the head
//! fan-out to `parallelism = 1` so the two scopes would not oversubscribe the
//! machine. This module replaces both with one long-lived pool and a
//! **two-level task queue**:
//!
//! * [`TaskLevel::Sequence`] — coarse tasks, one whole sequence of a batch.
//! * [`TaskLevel::Head`] — fine tasks, a chunk of attention heads within one
//!   decode step. Head tasks always dequeue first: they sit on the critical
//!   path of a step that some sequence task is already blocked on.
//!
//! Scheduling is work-helping: a thread that waits on a [`WorkerPool::scope`]
//! does not block — it keeps executing queued tasks (its own scope's or any
//! other's) until its scope drains. This is what lets a small batch soak up
//! leftover cores: while few sequence tasks are in flight, the waiting
//! threads and idle workers pick up the head-level tasks those sequences
//! spawn. It also makes the pool deadlock-free by construction at any worker
//! count, including zero (everything help-runs inline), and keeps nested
//! scopes (a sequence task stepping a session that fans out heads) safe.
//!
//! **Determinism.** The pool never influences results: every task writes to
//! its own pre-assigned output slot and a scope only returns once all of its
//! tasks completed, so outputs are collected in program order regardless of
//! which thread ran what. The top-level differential harness
//! (`tests/differential.rs`) pins this down against the sequential paths.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::Instant;

/// Priority class of a pool task (the two queue levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskLevel {
    /// Coarse-grained: decode one whole sequence of a batch.
    Sequence,
    /// Fine-grained: step a chunk of attention heads; dequeues before
    /// sequence tasks because a sequence task is already waiting on it.
    Head,
}

/// Snapshot of the pool's monotonic scheduling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Tasks executed (by workers and by helping scope owners).
    pub tasks_executed: usize,
    /// Tasks executed by a thread other than the one that spawned them.
    pub tasks_stolen: usize,
    /// Times a worker woke from the condvar and found both queues empty.
    pub idle_wakeups: usize,
    /// Scopes fully drained ([`WorkerPool::scope`] returns). A step-synchronous
    /// batch engine contributes one per per-layer fan-out, so this counts its
    /// intra-step synchronisation points.
    pub scopes_completed: usize,
    /// Cumulative nanoseconds workers (and helping scope owners) spent parked
    /// on the work condvar. Distinguishes "no contention" from "workers
    /// starved" even when `tasks_stolen == 0` (e.g. single-core runs).
    pub park_nanos: u64,
}

impl PoolMetrics {
    /// Counter increments since an `earlier` snapshot (saturating, so a
    /// mismatched pair degrades to zeros instead of nonsense).
    pub fn delta(self, earlier: PoolMetrics) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            idle_wakeups: self.idle_wakeups.saturating_sub(earlier.idle_wakeups),
            scopes_completed: self
                .scopes_completed
                .saturating_sub(earlier.scopes_completed),
            park_nanos: self.park_nanos.saturating_sub(earlier.park_nanos),
        }
    }
}

/// A task whose borrowed environment has been erased to `'static`; sound
/// because the owning scope cannot return before the task completed.
type TaskFn = Box<dyn FnOnce() + Send + 'static>;

struct Task {
    run: TaskFn,
    scope: Arc<ScopeState>,
    submitter: ThreadId,
}

#[derive(Default)]
struct Queues {
    head: VecDeque<Task>,
    seq: VecDeque<Task>,
}

impl Queues {
    fn pop(&mut self) -> Option<Task> {
        self.head.pop_front().or_else(|| self.seq.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.head.is_empty() && self.seq.is_empty()
    }
}

/// Live registry handles mirroring the pool's counters into the process
/// metrics exposition (`lad_obs::metrics`). All no-ops while metrics are
/// disabled; the handles are resolved once at pool construction.
struct PoolObs {
    queue_depth: lad_obs::metrics::Gauge,
    tasks_executed: lad_obs::metrics::Counter,
    tasks_stolen: lad_obs::metrics::Counter,
    park_nanos: lad_obs::metrics::Counter,
    idle_wakeups: lad_obs::metrics::Counter,
}

impl PoolObs {
    fn new() -> PoolObs {
        PoolObs {
            queue_depth: lad_obs::metrics::gauge("pool.queue_depth"),
            tasks_executed: lad_obs::metrics::counter("pool.tasks_executed"),
            tasks_stolen: lad_obs::metrics::counter("pool.tasks_stolen"),
            park_nanos: lad_obs::metrics::counter("pool.park_nanos"),
            idle_wakeups: lad_obs::metrics::counter("pool.idle_wakeups"),
        }
    }
}

struct Shared {
    queues: Mutex<Queues>,
    /// Notified on new work, task completion and shutdown; workers and
    /// helping scope owners both wait on it.
    work_cv: Condvar,
    shutdown: AtomicBool,
    tasks_executed: AtomicUsize,
    tasks_stolen: AtomicUsize,
    idle_wakeups: AtomicUsize,
    scopes_completed: AtomicUsize,
    park_nanos: AtomicU64,
    obs: PoolObs,
}

struct ScopeState {
    /// Tasks spawned but not yet completed. Mutated under the queue lock so
    /// the owner's check-then-wait cannot miss the final decrement.
    pending: AtomicUsize,
    /// First panic payload raised by any task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Default for ScopeState {
    fn default() -> ScopeState {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }
}

/// A long-lived two-level work-helping thread pool (see the module docs).
///
/// # Example
///
/// ```
/// use lad_core::pool::{TaskLevel, WorkerPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(2);
/// let hits = AtomicUsize::new(0);
/// pool.scope(|scope| {
///     for _ in 0..8 {
///         scope.spawn(TaskLevel::Head, || {
///             hits.fetch_add(1, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` long-lived background threads. `0` is
    /// valid: scopes then execute every task inline while "waiting".
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues::default()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_executed: AtomicUsize::new(0),
            tasks_stolen: AtomicUsize::new(0),
            idle_wakeups: AtomicUsize::new(0),
            scopes_completed: AtomicUsize::new(0),
            park_nanos: AtomicU64::new(0),
            obs: PoolObs::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("lad-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// The process-global pool shared by every decode session and batch:
    /// `available_parallelism - 1` background workers (the scope-owning
    /// thread always helps, so the machine is exactly saturated).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = thread::available_parallelism().map_or(1, |n| n.get());
            Arc::new(WorkerPool::new(cores.saturating_sub(1)))
        })
    }

    /// Number of background worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the scheduling counters (monotonic; diff two snapshots
    /// with [`PoolMetrics::delta`] to meter a region).
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.shared.tasks_stolen.load(Ordering::Relaxed),
            idle_wakeups: self.shared.idle_wakeups.load(Ordering::Relaxed),
            scopes_completed: self.shared.scopes_completed.load(Ordering::Relaxed),
            park_nanos: self.shared.park_nanos.load(Ordering::Relaxed),
        }
    }

    /// Runs `f`, which may spawn borrowing tasks on the scope, then
    /// help-executes queued tasks until every task spawned in the scope has
    /// completed. Panics from tasks are resumed on the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState::default());
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait (helping) even if `f` panicked: spawned tasks still borrow the
        // environment and must finish before unwinding frees it.
        self.help_until_done(&state);
        self.shared.scopes_completed.fetch_add(1, Ordering::Relaxed);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Executes queued tasks (any scope's — that is the stealing) until
    /// `state` has no pending tasks left.
    fn help_until_done(&self, state: &Arc<ScopeState>) {
        loop {
            let task = {
                let mut queues = self.shared.queues.lock().unwrap();
                loop {
                    if state.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    if let Some(task) = queues.pop() {
                        self.shared
                            .obs
                            .queue_depth
                            .set((queues.head.len() + queues.seq.len()) as i64);
                        break task;
                    }
                    queues = parked_wait(&self.shared, queues, "pool.help_wait");
                }
            };
            execute(&self.shared, task);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            // Flag under the lock so no worker can check-then-sleep around it.
            let _guard = self.shared.queues.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queues `task` at `level`. The task may borrow from the environment;
    /// the owning [`WorkerPool::scope`] call completes it before returning.
    pub fn spawn<F>(&self, level: TaskLevel, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the erased borrows live for 'env, and `scope` does not
        // return (completing 'env's borrow region) until `pending` hits zero,
        // i.e. until this task has run to completion or panicked — exactly
        // the guarantee std::thread::scope encodes in types.
        let run: TaskFn = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        let task = Task {
            run,
            scope: Arc::clone(&self.state),
            submitter: thread::current().id(),
        };
        {
            let mut queues = self.pool.shared.queues.lock().unwrap();
            self.state.pending.fetch_add(1, Ordering::AcqRel);
            match level {
                TaskLevel::Head => queues.head.push_back(task),
                TaskLevel::Sequence => queues.seq.push_back(task),
            }
            self.pool
                .shared
                .obs
                .queue_depth
                .set((queues.head.len() + queues.seq.len()) as i64);
        }
        self.pool.shared.work_cv.notify_one();
    }
}

fn execute(shared: &Shared, task: Task) {
    let _task_span = lad_obs::span("pool.task");
    shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
    shared.obs.tasks_executed.inc(1);
    if thread::current().id() != task.submitter {
        shared.tasks_stolen.fetch_add(1, Ordering::Relaxed);
        shared.obs.tasks_stolen.inc(1);
        lad_obs::instant("pool.steal");
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(task.run));
    if let Err(payload) = outcome {
        let mut slot = task.scope.panic.lock().unwrap();
        slot.get_or_insert(payload);
    }
    {
        // Decrement under the queue lock: scope owners check-then-wait under
        // the same lock, so the final decrement can never slip between their
        // check and their sleep.
        let _guard = shared.queues.lock().unwrap();
        task.scope.pending.fetch_sub(1, Ordering::AcqRel);
    }
    shared.work_cv.notify_all();
}

/// One condvar wait with park accounting: the blocked interval is added to
/// the pool's cumulative `park_nanos` and recorded as a span (`pool.park`
/// for idle workers, `pool.help_wait` for scope owners waiting on remote
/// tasks). The clock reads happen only on the about-to-sleep path, never
/// per task.
fn parked_wait<'q>(
    shared: &Shared,
    queues: std::sync::MutexGuard<'q, Queues>,
    span_name: &'static str,
) -> std::sync::MutexGuard<'q, Queues> {
    let _span = lad_obs::span(span_name);
    let parked_at = Instant::now();
    let queues = shared.work_cv.wait(queues).unwrap();
    let parked_ns = parked_at.elapsed().as_nanos() as u64;
    shared.park_nanos.fetch_add(parked_ns, Ordering::Relaxed);
    shared.obs.park_nanos.inc(parked_ns);
    queues
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut queues = shared.queues.lock().unwrap();
            loop {
                if let Some(task) = queues.pop() {
                    shared
                        .obs
                        .queue_depth
                        .set((queues.head.len() + queues.seq.len()) as i64);
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queues = parked_wait(shared, queues, "pool.park");
                if queues.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                    shared.idle_wakeups.fetch_add(1, Ordering::Relaxed);
                    shared.obs.idle_wakeups.inc(1);
                }
            }
        };
        match task {
            Some(task) => execute(shared, task),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_task() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..32 {
                scope.spawn(TaskLevel::Head, || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        assert!(pool.metrics().tasks_executed >= 32);
    }

    #[test]
    fn zero_worker_pool_helps_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for i in 0..10usize {
                let sum = &sum;
                scope.spawn(TaskLevel::Sequence, move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        // Nobody else could have run them: no steals on an owner-only pool.
        assert_eq!(pool.metrics().tasks_stolen, 0);
    }

    #[test]
    fn nested_scopes_complete_at_any_worker_count() {
        // A sequence task that itself fans out head tasks — the decode_batch
        // + Session::step shape — must drain even on a worker-less pool.
        for workers in [0usize, 1, 3] {
            let pool = WorkerPool::new(workers);
            let hits = AtomicUsize::new(0);
            pool.scope(|outer| {
                for _ in 0..4 {
                    outer.spawn(TaskLevel::Sequence, || {
                        pool.scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(TaskLevel::Head, || {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 16, "workers = {workers}");
        }
    }

    #[test]
    fn scope_returns_closure_value_and_borrows_work() {
        let pool = WorkerPool::new(1);
        let mut out = vec![0usize; 4];
        let total = pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(TaskLevel::Head, move || {
                    *slot = i + 1;
                });
            }
            "done"
        });
        assert_eq!(total, "done");
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_propagates_to_scope_owner() {
        let pool = WorkerPool::new(1);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(TaskLevel::Head, || panic!("boom in task"));
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom in task"), "payload: {msg}");
        // The pool must stay usable after a task panic.
        let ran = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(TaskLevel::Head, || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn metrics_delta_is_saturating() {
        let a = PoolMetrics {
            tasks_executed: 5,
            tasks_stolen: 1,
            idle_wakeups: 0,
            scopes_completed: 2,
            park_nanos: 100,
        };
        let b = PoolMetrics {
            tasks_executed: 9,
            tasks_stolen: 1,
            idle_wakeups: 2,
            scopes_completed: 5,
            park_nanos: 350,
        };
        let d = b.delta(a);
        assert_eq!(d.tasks_executed, 4);
        assert_eq!(d.tasks_stolen, 0);
        assert_eq!(d.idle_wakeups, 2);
        assert_eq!(d.scopes_completed, 3);
        assert_eq!(d.park_nanos, 250);
        assert_eq!(a.delta(b), PoolMetrics::default());
    }

    #[test]
    fn scope_counter_advances_per_drained_scope() {
        let pool = WorkerPool::new(1);
        let before = pool.metrics();
        for _ in 0..3 {
            pool.scope(|scope| {
                scope.spawn(TaskLevel::Head, || {});
            });
        }
        assert_eq!(pool.metrics().delta(before).scopes_completed, 3);
    }

    #[test]
    fn idle_workers_accumulate_park_time() {
        let pool = WorkerPool::new(1);
        // Run one task so the worker is definitely up, then leave it idle.
        pool.scope(|scope| {
            scope.spawn(TaskLevel::Head, || {});
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Poke the worker so its current park interval gets accounted; the
        // accounting lands when the worker wakes, so poll briefly.
        pool.scope(|scope| {
            scope.spawn(TaskLevel::Head, || {});
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while pool.metrics().park_nanos < 10_000_000 {
            assert!(
                Instant::now() < deadline,
                "idle worker accumulated only {}ns of park time",
                pool.metrics().park_nanos
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
            pool.shared.work_cv.notify_all();
        }
    }

    #[test]
    fn registry_counters_mirror_pool_metrics() {
        let c = lad_obs::metrics::counter("pool.tasks_executed");
        let before = c.value();
        let pool = WorkerPool::new(1);
        lad_obs::metrics::set_metrics_enabled(true);
        pool.scope(|scope| {
            for _ in 0..8 {
                scope.spawn(TaskLevel::Head, || {});
            }
        });
        lad_obs::metrics::set_metrics_enabled(false);
        // Other tests may run concurrently and add more, never less.
        assert!(c.value() - before >= 8);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Arc::as_ptr(WorkerPool::global());
        let b = Arc::as_ptr(WorkerPool::global());
        assert_eq!(a, b);
    }

    #[test]
    fn workers_steal_tasks_from_the_submitter() {
        let pool = WorkerPool::new(2);
        let before = pool.metrics();
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(TaskLevel::Head, || {
                    // Enough work that background workers get a chance to
                    // grab some tasks even on a loaded machine.
                    std::hint::black_box((0..500).sum::<usize>());
                });
            }
        });
        let delta = pool.metrics().delta(before);
        assert_eq!(delta.tasks_executed, 64);
        // Steals are scheduling-dependent; just check the counter is sane.
        assert!(delta.tasks_stolen <= 64);
    }
}
