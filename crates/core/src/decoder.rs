//! The LAD attention decoder — the paper's core contribution (Sec. III-E,
//! Fig. 3).
//!
//! One [`LadAttention`] instance holds the full state of one attention head
//! across decoding steps: the KV cache, the directional centers, the
//! per-position mode counters and the six intermediate caches. Each
//! [`LadAttention::step`] performs the five stages of the LAD attention
//! algorithm:
//!
//! 1. **Active position identification** — approximate scores from the
//!    directional centers (Alg. 1), exact scores for large-mode positions
//!    (Sec. III-F) and for the latest window.
//! 2. **Mode-based computation** — numerator/denominator from the
//!    intermediate caches, *no KV access*.
//! 3. **Correction** — exact scores for the (few) active positions; their
//!    keys/values are the only per-step KV-cache reads.
//! 4. **Window terms** — the latest positions, not yet in the caches, are
//!    weighted directly.
//! 5. **Maintenance** — counters, mode updates (Eq. 6) and aging the oldest
//!    window position into the caches (Eq. 5).
//!
//! With [`Identification::Oracle`] the output equals the direct PWL attention
//! of [`crate::reference::pwl_attention`] exactly (up to accumulation order) —
//! the invariant the property tests pin down. With
//! [`Identification::Approximate`] the only error source is interval
//! misidentification, exactly as the paper argues.

use std::collections::HashSet;

use crate::cache::IntermediateCache;
use crate::centers::{CenterBook, DEFAULT_COLLINEARITY_THRESHOLD};
use crate::kv::KvCache;
use crate::modes::ModeTracker;
use crate::stats::StepStats;
use lad_math::pwl::PwlExp;
use lad_math::vector;

/// The paper's latest-position exclusion window ("we exclude the latest 16
/// positions from intermediate caches", Sec. III-E).
pub const DEFAULT_WINDOW: usize = 16;

/// Smallest PWL denominator accepted before the step falls back to exact
/// window-only softmax (see `StepStats::den_fallbacks`).
const DEN_EPSILON: f64 = 1e-12;

/// How attention-score intervals are identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Identification {
    /// Directional-center approximation (Alg. 1) — the real LAD behaviour.
    Approximate,
    /// Exact scores for every position — no misidentification. Used to
    /// validate the exactness invariant; unrealistically expensive on
    /// hardware.
    Oracle,
}

/// Configuration of a LAD attention head.
#[derive(Debug, Clone, PartialEq)]
pub struct LadConfig {
    /// The interval partition and PWL coefficients.
    pub pwl: PwlExp,
    /// Latest positions excluded from the intermediate caches.
    pub window: usize,
    /// `|cos|` threshold for directional-center grouping (Alg. 1).
    pub collinearity_threshold: f64,
    /// Score positions whose mode is `>= large_mode_min_index` exactly
    /// (Sec. III-F: intervals near 0 are short, so approximating scores there
    /// easily misidentifies).
    pub exact_large_modes: bool,
    /// Threshold index for "larger modes"; defaults to the top two intervals.
    pub large_mode_min_index: usize,
    /// Identification strategy.
    pub identification: Identification,
    /// When `true`, each step also runs oracle identification to fill the
    /// `false_negatives` / `false_positives` diagnostics (costly).
    pub diagnostics: bool,
}

impl LadConfig {
    /// Paper-default configuration on the given partition.
    pub fn new(pwl: PwlExp) -> LadConfig {
        let large = pwl.num_intervals().saturating_sub(2);
        LadConfig {
            pwl,
            window: DEFAULT_WINDOW,
            collinearity_threshold: DEFAULT_COLLINEARITY_THRESHOLD,
            exact_large_modes: true,
            large_mode_min_index: large,
            identification: Identification::Approximate,
            diagnostics: false,
        }
    }

    /// Oracle-identification configuration (for validation).
    pub fn oracle(pwl: PwlExp) -> LadConfig {
        LadConfig {
            identification: Identification::Oracle,
            ..LadConfig::new(pwl)
        }
    }
}

impl Default for LadConfig {
    fn default() -> LadConfig {
        LadConfig::new(PwlExp::accurate_default())
    }
}

/// Result of one decoding step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutput {
    /// The attention output vector (length `d`).
    pub output: Vec<f32>,
    /// Instrumentation for the accelerator model.
    pub stats: StepStats,
}

/// Snapshot of a [`LadAttention`] head's decoding state, taken before a
/// speculative row so rejected drafts can be rolled back bit-exactly.
///
/// The KV arena itself is *not* copied — LAD's step only appends to it, so
/// remembering its length suffices and [`LadAttention::restore`] truncates.
/// The mode/center/cache metadata *is* copied, because correction and aging
/// mutate entries for old positions in place (counter records, delta
/// updates, cache inserts) and those edits cannot be undone from the arena.
#[derive(Debug, Clone)]
pub struct LadCheckpoint {
    kv_len: usize,
    tracker: ModeTracker,
    centers: CenterBook,
    cache: IntermediateCache,
    cached_mode: Vec<Option<usize>>,
    prev_active: HashSet<usize>,
}

/// Full LAD decoding state of one attention head.
///
/// # Example
///
/// ```
/// use lad_core::decoder::{LadAttention, LadConfig};
/// use lad_math::pwl::PwlExp;
///
/// let mut head = LadAttention::new(8, LadConfig::new(PwlExp::accurate_default()));
/// let out = head.step(&[0.1; 8], &[0.2; 8], &[0.3; 8]);
/// assert_eq!(out.output.len(), 8);
/// assert_eq!(head.kv().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LadAttention {
    cfg: LadConfig,
    kv: KvCache,
    tracker: ModeTracker,
    centers: CenterBook,
    cache: IntermediateCache,
    /// Mode under which each position currently sits in the intermediate
    /// caches; `None` while still inside the latest window.
    cached_mode: Vec<Option<usize>>,
    prev_active: HashSet<usize>,
    scratch: StepScratch,
}

/// Reusable per-step working memory. Every buffer is cleared and refilled
/// each step, so after warm-up the hot path performs no heap allocation
/// beyond the returned output vector and amortised arena growth.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    q_scaled: Vec<f32>,
    scores: Vec<f64>,
    exact: Vec<bool>,
    by_pos: Vec<f64>,
    num: Vec<f64>,
    active: Vec<usize>,
    corrected: Vec<bool>,
    next_active: HashSet<usize>,
    /// `(position, exact score)` of every latest-window position, cached by
    /// the window pass so the degenerate-denominator fallback can reuse the
    /// slice instead of rescanning all `n` positions.
    window_scores: Vec<(usize, f64)>,
}

impl LadAttention {
    /// Creates a head with dimension `dim` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, cfg: LadConfig) -> LadAttention {
        let intervals = cfg.pwl.num_intervals();
        let threshold = cfg.collinearity_threshold;
        LadAttention {
            kv: KvCache::new(dim),
            tracker: ModeTracker::new(intervals),
            centers: CenterBook::new(threshold),
            cache: IntermediateCache::new(dim),
            cached_mode: Vec::new(),
            prev_active: HashSet::new(),
            scratch: StepScratch::default(),
            cfg,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LadConfig {
        &self.cfg
    }

    /// Read access to the KV cache.
    pub fn kv(&self) -> &KvCache {
        &self.kv
    }

    /// Read access to the mode tracker.
    pub fn tracker(&self) -> &ModeTracker {
        &self.tracker
    }

    /// Read access to the directional centers.
    pub fn centers(&self) -> &CenterBook {
        &self.centers
    }

    /// Read access to the intermediate caches.
    pub fn intermediate_cache(&self) -> &IntermediateCache {
        &self.cache
    }

    /// The interval under which `position`'s contribution currently sits in
    /// the intermediate caches (`None` while inside the latest window).
    pub fn cached_interval(&self, position: usize) -> Option<usize> {
        self.cached_mode.get(position).copied().flatten()
    }

    /// Whether `position` was identified active (and therefore corrected)
    /// during the most recent step.
    pub fn was_corrected_last_step(&self, position: usize) -> bool {
        self.prev_active.contains(&position)
    }

    /// Captures the head's decoding state so a later [`restore`] rewinds it
    /// bit-exactly (see [`LadCheckpoint`] for what is copied vs. truncated).
    ///
    /// [`restore`]: LadAttention::restore
    pub fn checkpoint(&self) -> LadCheckpoint {
        LadCheckpoint {
            kv_len: self.kv.len(),
            tracker: self.tracker.clone(),
            centers: self.centers.clone(),
            cache: self.cache.clone(),
            cached_mode: self.cached_mode.clone(),
            prev_active: self.prev_active.clone(),
        }
    }

    /// Rewinds the head to `ck`: KV entries appended since are truncated away
    /// and the mode/center/cache metadata is restored. Subsequent steps are
    /// bit-identical to never having decoded past the checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the KV cache has been truncated below the checkpoint (the
    /// snapshot no longer describes a prefix of this head's history).
    pub fn restore(&mut self, ck: &LadCheckpoint) {
        self.kv.truncate(ck.kv_len);
        self.tracker.clone_from(&ck.tracker);
        self.centers.clone_from(&ck.centers);
        self.cache.clone_from(&ck.cache);
        self.cached_mode.clone_from(&ck.cached_mode);
        self.prev_active.clone_from(&ck.prev_active);
    }

    /// Executes one decoding step: appends `(key, value)` to the KV cache and
    /// computes the attention output for `query`.
    ///
    /// The per-step working memory lives in a reusable scratch, so after
    /// warm-up the hot path's only allocation is the returned output vector.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the head dimension.
    pub fn step(&mut self, query: &[f32], key: &[f32], value: &[f32]) -> StepOutput {
        let d = self.kv.dim();
        assert_eq!(query.len(), d, "step: query dim mismatch");

        // -- Append and register the new position.
        self.kv.push(key, value);
        self.tracker.push_position();
        self.cached_mode.push(None);
        self.centers.add_key(&self.kv.keys());
        let n = self.kv.len();

        // Detach the scratch so its buffers can be borrowed alongside the
        // other fields; reattached (capacity intact) before returning.
        let mut scratch = std::mem::take(&mut self.scratch);
        let scale = 1.0 / (d as f32).sqrt();
        scratch.q_scaled.clear();
        scratch.q_scaled.extend(query.iter().map(|&x| x * scale));
        let q_scaled = &scratch.q_scaled;

        // -- Stage 1-2: attention scores for identification.
        scratch.scores.clear();
        scratch.scores.resize(n, 0.0);
        scratch.exact.clear();
        scratch.exact.resize(n, false); // which scores are exact
        let scores = &mut scratch.scores;
        let exact = &mut scratch.exact;
        let mut large_mode_exact = 0usize;
        // Traffic counters: key/value vectors fetched from the KV arena this
        // step, incremented at every read site below. Center-book internal
        // maintenance (`add_key` above) reads through a detached view and is
        // modelled by the `centers` stat instead.
        let mut keys_fetched = 0usize;
        let mut values_fetched = 0usize;

        let identify_span = lad_obs::span("lad.identify");
        match self.cfg.identification {
            Identification::Oracle => {
                for i in 0..n {
                    scores[i] = f64::from(vector::dot(q_scaled, self.kv.key(i)));
                    exact[i] = true;
                }
                keys_fetched += n;
            }
            Identification::Approximate => {
                // EAS.1: exact scores of directional centers only.
                scratch.by_pos.clear();
                scratch.by_pos.resize(n, 0.0);
                for &c in self.centers.centers() {
                    let s = f64::from(vector::dot(q_scaled, self.kv.key(c)));
                    scratch.by_pos[c] = s;
                    scores[c] = s;
                    exact[c] = true;
                    keys_fetched += 1;
                }
                // EAS.2: rescale via dnorm.
                for i in 0..n {
                    if !exact[i] {
                        scores[i] = scratch.by_pos[self.centers.cid(i)] * self.centers.dnorm(i);
                    }
                }
                // EAS.3: exact scores for large-mode cached positions.
                if self.cfg.exact_large_modes {
                    let _large_mode_span = lad_obs::span("lad.large_mode_exact");
                    for i in 0..n {
                        if !exact[i]
                            && self.cached_mode[i].is_some()
                            && self.tracker.mode(i) >= self.cfg.large_mode_min_index
                        {
                            scores[i] = f64::from(vector::dot(q_scaled, self.kv.key(i)));
                            exact[i] = true;
                            large_mode_exact += 1;
                            keys_fetched += 1;
                        }
                    }
                }
                // Window positions are in the active FIFO by default — the MD
                // module computes their exact scores.
                for i in 0..n {
                    if !exact[i] && self.cached_mode[i].is_none() {
                        scores[i] = f64::from(vector::dot(q_scaled, self.kv.key(i)));
                        exact[i] = true;
                        keys_fetched += 1;
                    }
                }
            }
        }

        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // -- APID: identify active cached positions.
        scratch.active.clear();
        for (i, &score) in scores.iter().enumerate() {
            if self.cached_mode[i].is_some() {
                let mode = self.tracker.mode(i);
                let (lo, hi) = self.cfg.pwl.interval_bounds(mode);
                let shifted = score - m;
                if shifted < lo || shifted > hi {
                    scratch.active.push(i);
                }
            }
        }
        drop(identify_span);

        // -- AC.1/AC.2: mode-based numerator and denominator from the caches.
        let mut den = {
            let _mode_eval_span = lad_obs::span("lad.mode_eval");
            self.cache.evaluate_into(q_scaled, m, &mut scratch.num)
        };
        let num = &mut scratch.num;

        // -- MD + AC.3: correction computations for active positions.
        let correct_span = lad_obs::span("lad.correct");
        let mut mode_updates = 0usize;
        let mut new_active = 0usize;
        scratch.next_active.clear();
        scratch.corrected.clear();
        scratch.corrected.resize(n, false);
        for &j in &scratch.active {
            // The MD module computes the *accurate* score for active
            // positions (reads the key from the KV cache).
            let s_exact = if exact[j] {
                scores[j]
            } else {
                keys_fetched += 1;
                f64::from(vector::dot(q_scaled, self.kv.key(j)))
            };
            let shifted = s_exact - m;
            let id = self.cfg.pwl.interval_of(shifted);
            let cached = self.cached_mode[j].expect("active positions are cached");
            let (a_id, b_id) = self.cfg.pwl.coeffs(id);
            let (a_mode, b_mode) = self.cfg.pwl.coeffs(cached);
            let alpha = a_id - a_mode;
            let beta = b_id - b_mode;
            // Correction factor; zero for false positives (id == cached).
            let cf = alpha * shifted + beta;
            if cf != 0.0 {
                values_fetched += 1;
                for (slot, &vc) in num.iter_mut().zip(self.kv.value(j)) {
                    *slot += cf * f64::from(vc);
                }
                den += cf;
            }
            scratch.corrected[j] = true;
            if !self.prev_active.contains(&j) {
                new_active += 1;
            }
            scratch.next_active.insert(j);
            // Counter maintenance for active positions uses the true interval.
            let changed = self.tracker.record(j, id);
            if changed {
                self.cache
                    .delta_update(alpha, beta, self.kv.key(j), self.kv.value(j));
                self.cached_mode[j] = Some(id);
                mode_updates += 1;
                keys_fetched += 1;
                values_fetched += 1;
            }
        }
        drop(correct_span);

        // -- Step 5: window positions (not yet cached) computed directly.
        // Their `(position, score)` pairs are cached in scratch: the
        // degenerate-denominator fallback below feeds on the slice directly,
        // so it costs O(window · d) instead of rescanning all n positions.
        let window_span = lad_obs::span("lad.window");
        let mut window_count = 0usize;
        scratch.window_scores.clear();
        for (i, &score) in scores.iter().enumerate() {
            if self.cached_mode[i].is_none() {
                window_count += 1;
                scratch.window_scores.push((i, score));
                let shifted = score - m;
                let id = self.cfg.pwl.interval_of(shifted);
                let (a, b) = self.cfg.pwl.coeffs(id);
                let w = a * shifted + b;
                if w != 0.0 {
                    values_fetched += 1;
                    for (slot, &vc) in num.iter_mut().zip(self.kv.value(i)) {
                        *slot += w * f64::from(vc);
                    }
                    den += w;
                }
                self.tracker.record(i, id);
            } else if !scratch.corrected[i] {
                // Non-active cached position: APID increments its mode
                // counter without knowing the true interval.
                self.tracker.record_mode_hit(i);
            }
        }
        drop(window_span);

        // -- Degenerate-denominator guard: the PWL weights can go negative
        // (the least-squares fit dips below zero near interval edges), so
        // `den` can vanish or flip sign on adversarial partitions/streams.
        // Fall back to exact softmax over the window positions — always
        // non-empty (the newest position is one) and finite by construction.
        let mut den_fallbacks = 0usize;
        let output: Vec<f32> = if den.is_finite() && den > DEN_EPSILON {
            num.iter().map(|&x| (x / den) as f32).collect()
        } else {
            let _fallback_span = lad_obs::span("lad.den_fallback");
            den_fallbacks = 1;
            // The window pass already collected every (position, exact score)
            // pair; reuse the cached slice rather than rescanning `scores`.
            let mut m_w = f64::NEG_INFINITY;
            for &(_, score) in &scratch.window_scores {
                m_w = m_w.max(score);
            }
            num.clear();
            num.resize(d, 0.0);
            let mut w_den = 0.0f64;
            values_fetched += scratch.window_scores.len();
            for &(i, score) in &scratch.window_scores {
                let w = (score - m_w).exp();
                w_den += w;
                for (slot, &vc) in num.iter_mut().zip(self.kv.value(i)) {
                    *slot += w * f64::from(vc);
                }
            }
            num.iter().map(|&x| (x / w_den) as f32).collect()
        };

        // -- Diagnostics: oracle comparison of the active set.
        let (false_negatives, false_positives) =
            if self.cfg.diagnostics && self.cfg.identification == Identification::Approximate {
                // The oracle comparison re-reads every cached position's key.
                keys_fetched += self.cached_mode.iter().flatten().count();
                self.identification_errors(q_scaled, m, &scratch.next_active)
            } else {
                (0, 0)
            };

        // -- Aging: the oldest window position joins the caches (Eq. 5).
        let _mode_update_span = lad_obs::span("lad.mode_update");
        if n > self.cfg.window {
            let aged = n - 1 - self.cfg.window;
            if self.cached_mode[aged].is_none() {
                let mode = self.tracker.mode(aged);
                let (a, b) = self.cfg.pwl.coeffs(mode);
                self.cache
                    .insert(a, b, self.kv.key(aged), self.kv.value(aged));
                self.cached_mode[aged] = Some(mode);
                keys_fetched += 1;
                values_fetched += 1;
            }
        }

        // Swap rather than move: last step's set becomes next step's
        // (cleared) scratch, so neither HashSet is ever re-allocated.
        std::mem::swap(&mut self.prev_active, &mut scratch.next_active);
        let active_count = scratch.active.len();
        self.scratch = scratch;

        StepOutput {
            output,
            stats: StepStats {
                n,
                centers: self.centers.centers().len(),
                large_mode_exact,
                active: active_count,
                window: window_count,
                mode_updates,
                new_active,
                false_negatives,
                false_positives,
                den_fallbacks,
                // Every position receives a score (exact or center-estimated);
                // only `keys_read` of them cost arena bandwidth.
                keys_scored: n,
                keys_read: keys_fetched,
                bytes_moved: (keys_fetched + values_fetched)
                    * d
                    * self.kv.precision().bytes_per_element(),
                evictions: 0,
                // Scheduling metadata: the session that fanned this head out
                // (if any) overwrites it with the scheduled width.
                fanout_width: 0,
            },
        }
    }

    /// Compares the identified active set against oracle identification.
    fn identification_errors(
        &self,
        q_scaled: &[f32],
        m: f64,
        identified: &HashSet<usize>,
    ) -> (usize, usize) {
        let mut false_negatives = 0;
        let mut false_positives = 0;
        for i in 0..self.kv.len() {
            let Some(cached) = self.cached_mode[i] else {
                continue;
            };
            // We compare against the *cached* mode: a position is truly
            // active when its exact-score interval differs from the interval
            // its cache contribution assumes.
            let s = f64::from(vector::dot(q_scaled, self.kv.key(i)));
            let truly_active = self.cfg.pwl.interval_of(s - m) != cached;
            match (truly_active, identified.contains(&i)) {
                (true, false) => false_negatives += 1,
                (false, true) => false_positives += 1,
                _ => {}
            }
        }
        (false_negatives, false_positives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use lad_math::Rng;

    fn run_head(
        cfg: LadConfig,
        n_steps: usize,
        d: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<StepStats>, LadAttention) {
        let mut rng = Rng::new(seed);
        let mut head = LadAttention::new(d, cfg);
        let mut outs = Vec::new();
        let mut stats = Vec::new();
        for _ in 0..n_steps {
            let q = rng.normal_vec(d, 1.0);
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            let out = head.step(&q, &k, &v);
            outs.push(out.output);
            stats.push(out.stats);
        }
        (outs, stats, head)
    }

    #[test]
    fn first_step_returns_the_value() {
        let mut head = LadAttention::new(4, LadConfig::default());
        let out = head.step(&[1.0; 4], &[0.5; 4], &[1.0, 2.0, 3.0, 4.0]);
        // One position: softmax weight 1 -> output == value.
        for (got, want) in out.output.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((got - want).abs() < 1e-5);
        }
        assert_eq!(out.stats.n, 1);
        assert_eq!(out.stats.window, 1);
        assert_eq!(out.stats.active, 0);
    }

    #[test]
    fn oracle_matches_direct_pwl_attention() {
        // The core exactness invariant: with oracle identification the LAD
        // cached computation reproduces direct PWL attention (Eq.3 == Eq.4).
        let d = 16;
        let pwl = PwlExp::accurate_default();
        let mut rng = Rng::new(77);
        let mut head = LadAttention::new(d, LadConfig::oracle(pwl.clone()));
        let mut shadow = KvCache::new(d);
        for step in 0..120 {
            let q = rng.normal_vec(d, 1.0);
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            shadow.push(&k, &v);
            let lad = head.step(&q, &k, &v).output;
            let direct = reference::pwl_attention(&q, &shadow, &pwl);
            let rel = vector::relative_l2(&lad, &direct);
            assert!(rel < 1e-4, "step {step}: relative error {rel}");
        }
    }

    #[test]
    fn approximate_tracks_exact_attention() {
        // End-to-end accuracy: approximate identification stays close to the
        // exact softmax attention on random streams.
        let d = 16;
        let (outs, _, head) = run_head(LadConfig::default(), 100, d, 78);
        let mut rng = Rng::new(78);
        let mut shadow = KvCache::new(d);
        let mut worst = 0.0f32;
        for out in &outs {
            let q = rng.normal_vec(d, 1.0);
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            shadow.push(&k, &v);
            let exact = reference::exact_attention(&q, &shadow);
            worst = worst.max(vector::relative_l2(out, &exact));
        }
        assert_eq!(head.kv().len(), 100);
        assert!(worst < 0.15, "worst relative error {worst}");
    }

    #[test]
    fn stats_shape_is_sane() {
        let (_, stats, _) = run_head(LadConfig::default(), 80, 8, 79);
        let last = stats.last().unwrap();
        assert_eq!(last.n, 80);
        // Window covers the latest positions (W + the one about to age).
        assert_eq!(last.window, DEFAULT_WINDOW + 1);
        // Active positions are a subset of cached ones.
        assert!(last.active <= last.n - last.window);
        // Before the window fills, nothing is cached or active.
        assert_eq!(stats[5].active, 0);
        assert_eq!(stats[5].window, 6);
    }

    #[test]
    fn cached_mode_matches_tracker_after_updates() {
        // Internal consistency: every cached position's cache contribution
        // must be under its tracker mode at step boundaries.
        let (_, _, head) = run_head(LadConfig::default(), 120, 8, 80);
        for (i, cached) in head.cached_mode.iter().enumerate() {
            if let Some(mode) = cached {
                assert_eq!(
                    *mode,
                    head.tracker.mode(i),
                    "position {i} cache/tracker divergence"
                );
            }
        }
    }

    #[test]
    fn oracle_reports_no_identification_errors() {
        let pwl = PwlExp::accurate_default();
        let mut cfg = LadConfig::oracle(pwl);
        cfg.diagnostics = true;
        let (_, stats, _) = run_head(cfg, 60, 8, 81);
        for s in &stats {
            assert_eq!(s.false_negatives, 0);
            assert_eq!(s.false_positives, 0);
        }
    }

    #[test]
    fn diagnostics_bound_misidentification() {
        let cfg = LadConfig {
            diagnostics: true,
            ..LadConfig::default()
        };
        let (_, stats, _) = run_head(cfg, 150, 16, 82);
        let total_cached: usize = stats.iter().map(|s| s.n.saturating_sub(s.window)).sum();
        let total_fn: usize = stats.iter().map(|s| s.false_negatives).sum();
        // Paper Sec. III-F: error positions are limited to ~1%. Random keys
        // are much harder than real LLM keys, so allow some slack.
        let rate = total_fn as f64 / total_cached.max(1) as f64;
        assert!(rate < 0.10, "false negative rate {rate}");
    }

    #[test]
    fn window_config_controls_cache_admission() {
        let cfg = LadConfig {
            window: 4,
            ..LadConfig::default()
        };
        let (_, stats, head) = run_head(cfg, 30, 8, 83);
        assert_eq!(stats.last().unwrap().window, 5);
        // After the step's aging, positions 0..=n-1-window are cached.
        let cached = head.cached_mode.iter().filter(|m| m.is_some()).count();
        assert_eq!(cached, 30 - 4);
    }

    #[test]
    fn centers_grow_sublinearly_on_clustered_keys() {
        // Keys drawn from a few directions produce few centers.
        let d = 8;
        let mut rng = Rng::new(84);
        let dirs: Vec<Vec<f32>> = (0..4).map(|_| rng.normal_vec(d, 1.0)).collect();
        let mut head = LadAttention::new(d, LadConfig::default());
        for i in 0..60 {
            let base = &dirs[i % 4];
            let k: Vec<f32> = base.iter().map(|&x| x * (1.0 + 0.1 * (i as f32))).collect();
            let q = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            head.step(&q, &k, &v);
        }
        assert!(
            head.centers().centers().len() <= 8,
            "got {} centers",
            head.centers().centers().len()
        );
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        // Decode N steps, checkpoint, decode M more (enough to trigger
        // aging, corrections and counter records on old positions), restore,
        // replay the same M inputs: outputs and stats must be bit-identical.
        let d = 8;
        let cfg = LadConfig {
            window: 4,
            ..LadConfig::default()
        };
        let mut rng = Rng::new(90);
        let mut head = LadAttention::new(d, cfg);
        for _ in 0..20 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            head.step(&q, &k, &v);
        }
        let ck = head.checkpoint();
        let inputs: Vec<_> = (0..10)
            .map(|_| {
                (
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                )
            })
            .collect();
        let first: Vec<StepOutput> = inputs.iter().map(|(q, k, v)| head.step(q, k, v)).collect();
        head.restore(&ck);
        assert_eq!(head.kv().len(), 20);
        let second: Vec<StepOutput> = inputs.iter().map(|(q, k, v)| head.step(q, k, v)).collect();
        assert_eq!(first, second, "replay after restore diverged");
    }

    #[test]
    #[should_panic(expected = "query dim mismatch")]
    fn wrong_query_dim_panics() {
        let mut head = LadAttention::new(4, LadConfig::default());
        head.step(&[1.0; 3], &[0.0; 4], &[0.0; 4]);
    }

    #[test]
    fn degenerate_denominator_falls_back_to_window_softmax() {
        // A deliberately coarse two-interval partition: its least-squares fit
        // of exp on [-100, 0] goes negative near the far end, so a few deeply
        // negative scores drive the PWL denominator below zero. Without the
        // guard this divided by den <= 0 and produced garbage or non-finite
        // outputs; with it, the step must stay finite and flag the event.
        let pwl = PwlExp::with_boundaries(&[-100.0, 0.0]).unwrap();
        let mut head = LadAttention::new(2, LadConfig::new(pwl));
        let q = [10.0f32, 0.0];
        let first = head.step(&q, &[2.0, 0.0], &[5.0, -3.0]);
        assert_eq!(first.stats.den_fallbacks, 0);

        let mut fallbacks = 0usize;
        let mut last = first;
        for i in 0..6 {
            last = head.step(&q, &[-12.0, 0.0], &[i as f32, 1.0]);
            assert!(
                last.output.iter().all(|x| x.is_finite()),
                "step {i}: non-finite output {:?}",
                last.output
            );
            fallbacks += last.stats.den_fallbacks;
        }
        assert!(fallbacks > 0, "partition never degenerated den");

        // Everything is still inside the window here, so the fallback is the
        // exact softmax over the whole cache.
        assert_eq!(last.stats.den_fallbacks, 1);
        let exact = reference::exact_attention(&q, head.kv());
        let rel = vector::relative_l2(&last.output, &exact);
        assert!(rel < 1e-5, "fallback vs exact softmax: {rel}");
    }

    #[test]
    fn den_fallback_matches_window_softmax_with_cached_positions() {
        // Regression for the cached window-score-slice fast path: on a stream
        // engineered to degenerate the denominator *after* positions have aged
        // into the intermediate caches, the fallback must still equal the
        // exact softmax over only the window positions — computed here
        // independently from a shadow KV cache, in the same f64 op order, so
        // the comparison is bit-exact. Any drift in what the fallback reads
        // (e.g. the cached slice going stale) breaks this equality.
        let pwl = PwlExp::with_boundaries(&[-100.0, 0.0]).unwrap();
        let cfg = LadConfig {
            window: 3,
            ..LadConfig::new(pwl)
        };
        let d = 2;
        let mut head = LadAttention::new(d, cfg);
        let mut shadow = KvCache::new(d);
        let q = [10.0f32, 0.0];
        let scale = 1.0 / (d as f32).sqrt();
        let q_scaled: Vec<f32> = q.iter().map(|&x| x * scale).collect();

        let mut fallbacks_with_cache = 0usize;
        for i in 0..12 {
            // First key scores high (pins the max); the rest score ~-85
            // shifted, where the coarse fit's weights go negative.
            let k = if i == 0 { [2.0f32, 0.0] } else { [-12.0, 0.0] };
            let v = [i as f32, 1.0 - i as f32];
            shadow.push(&k, &v);
            let out = head.step(&q, &k, &v);
            assert!(out.output.iter().all(|x| x.is_finite()));
            if out.stats.den_fallbacks == 0 {
                continue;
            }
            // Window positions during step i (0-indexed): everything not yet
            // aged into the caches, i.e. indices > i - 1 - window.
            let n: usize = i + 1;
            let first_window = n.saturating_sub(head.config().window + 1);
            if first_window > 0 {
                fallbacks_with_cache += 1;
            }
            let mut m_w = f64::NEG_INFINITY;
            let scores: Vec<f64> = (first_window..n)
                .map(|j| f64::from(vector::dot(&q_scaled, shadow.key(j))))
                .collect();
            for &s in &scores {
                m_w = m_w.max(s);
            }
            let mut num = vec![0.0f64; d];
            let mut den = 0.0f64;
            for (j, &s) in (first_window..n).zip(&scores) {
                let w = (s - m_w).exp();
                den += w;
                for (slot, &vc) in num.iter_mut().zip(shadow.value(j)) {
                    *slot += w * f64::from(vc);
                }
            }
            let expected: Vec<f32> = num.iter().map(|&x| (x / den) as f32).collect();
            assert_eq!(out.output, expected, "step {i}: fallback diverged");
        }
        assert!(
            fallbacks_with_cache > 0,
            "stream never hit the fallback with cached positions present"
        );
    }
}
