//! Per-position interval counters and mode tracking (paper Sec. III-E,
//! "Maintenance of Intermediate Cache").
//!
//! For every position the tracker counts how many decoding steps its attention
//! score fell into each interval. The **mode interval** is the argmax of the
//! counters — the stable positional property LAD builds its intermediate
//! caches around. Counters are bounded by the hardware's `uint12` capacity
//! (paper Sec. IV-C: `cnt` occupies 12 bits of the `G` tensor); when one
//! counter reaches the bound, all of the position's counters are halved
//! (standard hardware aging) so relative ordering is preserved but the mode
//! can still change on long streams.

/// Saturation limit of a hardware counter (`uint12`).
pub const COUNTER_MAX: u16 = 4095;

/// Tracks interval-occurrence counters and the mode interval per position.
///
/// # Example
///
/// ```
/// use lad_core::modes::ModeTracker;
///
/// let mut tracker = ModeTracker::new(4);
/// tracker.push_position();
/// tracker.record(0, 2);
/// tracker.record(0, 2);
/// tracker.record(0, 1);
/// assert_eq!(tracker.mode(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTracker {
    intervals: usize,
    counts: Vec<Vec<u16>>,
    modes: Vec<usize>,
}

impl ModeTracker {
    /// Creates a tracker for a partition with `intervals` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0`.
    pub fn new(intervals: usize) -> ModeTracker {
        assert!(intervals > 0, "ModeTracker: need at least one interval");
        ModeTracker {
            intervals,
            counts: Vec::new(),
            modes: Vec::new(),
        }
    }

    /// Number of intervals in the partition.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Number of tracked positions.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no positions are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Registers a new position with zeroed counters and default mode 0
    /// (the hardware default for positions inside the latest-16 window,
    /// paper Sec. IV-B(3)).
    pub fn push_position(&mut self) {
        self.counts.push(vec![0; self.intervals]);
        self.modes.push(0);
    }

    /// Current mode interval of `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn mode(&self, position: usize) -> usize {
        self.modes[position]
    }

    /// Counter vector of `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn counts(&self, position: usize) -> &[u16] {
        &self.counts[position]
    }

    /// Records that `position`'s score fell into `interval` this step and
    /// returns `true` if the mode changed as a result (the position joins the
    /// update set `U`, paper Sec. III-C).
    ///
    /// Mirrors the MD module: the incremented counter is compared against the
    /// mode's counter and the mode moves only when strictly greater.
    ///
    /// # Panics
    ///
    /// Panics if `position` or `interval` is out of bounds.
    pub fn record(&mut self, position: usize, interval: usize) -> bool {
        assert!(interval < self.intervals, "record: interval out of bounds");
        let counters = &mut self.counts[position];
        age_if_saturated(counters, interval);
        counters[interval] += 1;
        let mode = self.modes[position];
        if interval != mode && counters[interval] > counters[mode] {
            self.modes[position] = interval;
            true
        } else {
            false
        }
    }

    /// Records the *mode* interval for a non-active position (the APID module
    /// increments `cnt[i, mode[i]]` without knowing the true interval,
    /// paper Sec. IV-B(3)). Never changes the mode.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn record_mode_hit(&mut self, position: usize) {
        let mode = self.modes[position];
        let counters = &mut self.counts[position];
        age_if_saturated(counters, mode);
        counters[mode] += 1;
    }

    /// Iterator over all current modes, position order.
    pub fn iter_modes(&self) -> impl Iterator<Item = usize> + '_ {
        self.modes.iter().copied()
    }
}

/// Ages a position's counters when the counter about to be incremented sits
/// at [`COUNTER_MAX`]: every counter is halved, so the increment always has
/// headroom and counter *ordering* (hence the mode invariant `cnt[mode] >=
/// cnt[i]` for non-challengers) is preserved. Without aging, a saturated
/// mode counter could never be strictly exceeded and the position's mode
/// would be frozen forever (~4k steps in).
fn age_if_saturated(counters: &mut [u16], interval: usize) {
    if counters[interval] >= COUNTER_MAX {
        for c in counters.iter_mut() {
            *c >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_follows_majority() {
        let mut t = ModeTracker::new(3);
        t.push_position();
        // Default mode is 0 with count 0; first record of interval 1 makes
        // cnt[1]=1 > cnt[0]=0, so the mode moves immediately.
        assert!(t.record(0, 1));
        assert_eq!(t.mode(0), 1);
    }

    #[test]
    fn mode_change_requires_strict_majority() {
        let mut t = ModeTracker::new(3);
        t.push_position();
        t.record(0, 1);
        t.record(0, 1); // cnt[1] = 2, mode 1
        assert!(!t.record(0, 2)); // cnt[2]=1 < 2
        assert!(!t.record(0, 2)); // cnt[2]=2 == 2, tie keeps old mode
        assert!(t.record(0, 2)); // cnt[2]=3 > 2 -> mode change
        assert_eq!(t.mode(0), 2);
    }

    #[test]
    fn first_record_changes_mode_and_reports_update() {
        let mut t = ModeTracker::new(4);
        t.push_position();
        // record() returns whether the mode changed.
        let changed = t.record(0, 3);
        assert!(changed);
        assert_eq!(t.mode(0), 3);
    }

    #[test]
    fn record_mode_hit_never_moves_mode() {
        let mut t = ModeTracker::new(3);
        t.push_position();
        t.record(0, 2);
        for _ in 0..10 {
            t.record_mode_hit(0);
        }
        assert_eq!(t.mode(0), 2);
        assert_eq!(t.counts(0)[2], 11);
    }

    #[test]
    fn counters_never_exceed_u12() {
        let mut t = ModeTracker::new(2);
        t.push_position();
        for _ in 0..20_000 {
            t.record(0, 1);
            assert!(t.counts(0)[1] <= COUNTER_MAX);
        }
        // Aging keeps the counter in the upper half of its range.
        assert!(t.counts(0)[1] > COUNTER_MAX / 2);
    }

    #[test]
    fn mode_can_change_after_saturation() {
        // Regression: without aging, a counter saturated at COUNTER_MAX can
        // never be strictly exceeded, freezing the mode permanently after
        // ~4k steps. Drive one interval past saturation, then switch the
        // stream to another interval and require the mode to follow.
        let mut t = ModeTracker::new(3);
        t.push_position();
        for _ in 0..5000 {
            t.record(0, 1);
        }
        assert_eq!(t.mode(0), 1);
        let mut changed = false;
        for _ in 0..5000 {
            changed |= t.record(0, 2);
        }
        assert!(changed, "mode frozen after counter saturation");
        assert_eq!(t.mode(0), 2);
    }

    #[test]
    fn mode_hits_age_too() {
        // record_mode_hit must also age: an APID-incremented mode counter
        // saturating would freeze the mode just the same.
        let mut t = ModeTracker::new(2);
        t.push_position();
        t.record(0, 0);
        for _ in 0..COUNTER_MAX as usize + 10 {
            t.record_mode_hit(0);
        }
        assert!(t.counts(0)[0] <= COUNTER_MAX);
        for _ in 0..3000 {
            t.record(0, 1);
        }
        assert_eq!(t.mode(0), 1, "mode frozen after mode-hit saturation");
    }

    #[test]
    fn positions_are_independent() {
        let mut t = ModeTracker::new(3);
        t.push_position();
        t.push_position();
        t.record(0, 1);
        t.record(1, 2);
        assert_eq!(t.mode(0), 1);
        assert_eq!(t.mode(1), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "interval out of bounds")]
    fn interval_bounds_checked() {
        let mut t = ModeTracker::new(2);
        t.push_position();
        t.record(0, 2);
    }
}
