//! Numerical-locality analysis of attention scores (paper Sec. II-B, Fig. 2).
//!
//! Feeds on per-step score rows (already shifted by the running maximum) and
//! records, for every position, how often its score falls into each interval
//! of a partition. Produces the paper's Fig. 2 artefacts: the per-position
//! interval heatmap (a) and the averaged top-1/top-2 interval probabilities
//! (b).

use lad_math::pwl::PwlExp;
use lad_math::stats;
use serde::{Deserialize, Serialize};

/// Aggregated locality measurements over a decode trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Mean (over positions) probability of the most frequent interval.
    pub top1: f64,
    /// Mean probability of the two most frequent intervals combined.
    pub top2: f64,
    /// Fraction of positions whose top-2 interval neighbours their top-1.
    pub top2_adjacent: f64,
    /// Number of positions with at least `min_history` observations.
    pub positions: usize,
}

/// Observes shifted attention scores step by step and accumulates
/// per-position interval counters.
///
/// # Example
///
/// ```
/// use lad_core::locality::LocalityAnalyzer;
/// use lad_math::pwl::PwlExp;
///
/// let mut analyzer = LocalityAnalyzer::new(PwlExp::paper_default());
/// // Two steps over three positions, scores already shifted by the max.
/// analyzer.observe_step(&[-0.5, -4.0, -11.0]);
/// analyzer.observe_step(&[-0.6, -4.2, -10.5]);
/// let report = analyzer.report(2);
/// assert_eq!(report.positions, 3);
/// assert_eq!(report.top1, 1.0); // every position stayed in its interval
/// ```
#[derive(Debug, Clone)]
pub struct LocalityAnalyzer {
    pwl: PwlExp,
    counts: Vec<Vec<u64>>,
    /// `history[i][t]` = interval of position `i` at its `t`-th observation
    /// (kept only up to `heatmap_depth` steps for the Fig. 2(a) heatmap).
    history: Vec<Vec<u8>>,
    heatmap_depth: usize,
}

impl LocalityAnalyzer {
    /// Creates an analyzer over the given partition, keeping the last
    /// 10 observations per position for heatmaps (Fig. 2(a) shows 10 steps).
    pub fn new(pwl: PwlExp) -> LocalityAnalyzer {
        LocalityAnalyzer {
            pwl,
            counts: Vec::new(),
            history: Vec::new(),
            heatmap_depth: 10,
        }
    }

    /// Number of tracked positions.
    pub fn positions(&self) -> usize {
        self.counts.len()
    }

    /// Records one decoding step's shifted scores (`sᵢ − m`), one entry per
    /// position. The row may be longer than the previous one (sequence
    /// growth); new positions are registered on first sight.
    pub fn observe_step(&mut self, shifted_scores: &[f64]) {
        let intervals = self.pwl.num_intervals();
        while self.counts.len() < shifted_scores.len() {
            self.counts.push(vec![0; intervals]);
            self.history.push(Vec::new());
        }
        for (i, &s) in shifted_scores.iter().enumerate() {
            let id = self.pwl.interval_of(s);
            self.counts[i][id] += 1;
            let h = &mut self.history[i];
            if h.len() == self.heatmap_depth {
                h.remove(0);
            }
            h.push(id as u8);
        }
    }

    /// Per-position interval counters.
    pub fn counts(&self, position: usize) -> &[u64] {
        &self.counts[position]
    }

    /// The Fig. 2(a)-style heatmap: for up to `max_positions` positions, the
    /// interval index at each of the last (≤10) steps.
    pub fn heatmap(&self, max_positions: usize) -> Vec<Vec<u8>> {
        self.history.iter().take(max_positions).cloned().collect()
    }

    /// Aggregated report over positions with at least `min_history` total
    /// observations (positions with too little history have no meaningful
    /// mode — the same reason the decoder excludes the latest window).
    pub fn report(&self, min_history: u64) -> LocalityReport {
        let mut top1s = Vec::new();
        let mut top2s = Vec::new();
        let mut adjacent = 0usize;
        for counters in &self.counts {
            let total: u64 = counters.iter().sum();
            if total < min_history {
                continue;
            }
            let (t1, t2) = stats::top1_top2(counters);
            top1s.push(t1);
            top2s.push(t2);
            // Find the two most frequent interval indices.
            let mut order: Vec<usize> = (0..counters.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(counters[i]));
            if counters[order[1]] > 0 && order[0].abs_diff(order[1]) == 1 {
                adjacent += 1;
            }
        }
        let positions = top1s.len();
        LocalityReport {
            top1: stats::mean(&top1s),
            top2: stats::mean(&top2s),
            top2_adjacent: if positions == 0 {
                0.0
            } else {
                adjacent as f64 / positions as f64
            },
            positions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_locality_scores_one() {
        let mut a = LocalityAnalyzer::new(PwlExp::paper_default());
        for _ in 0..20 {
            a.observe_step(&[-0.5, -5.0]);
        }
        let r = a.report(1);
        assert_eq!(r.top1, 1.0);
        assert_eq!(r.top2, 1.0);
        assert_eq!(r.positions, 2);
    }

    #[test]
    fn alternating_positions_have_half_top1() {
        let mut a = LocalityAnalyzer::new(PwlExp::paper_default());
        for t in 0..20 {
            // Alternate between interval 4 ([-1,0]) and interval 3 ([-3,-1]).
            let s = if t % 2 == 0 { -0.5 } else { -2.0 };
            a.observe_step(&[s]);
        }
        let r = a.report(1);
        assert!((r.top1 - 0.5).abs() < 1e-12);
        assert_eq!(r.top2, 1.0);
        // Intervals 3 and 4 are adjacent.
        assert_eq!(r.top2_adjacent, 1.0);
    }

    #[test]
    fn min_history_filters_young_positions() {
        let mut a = LocalityAnalyzer::new(PwlExp::paper_default());
        a.observe_step(&[-1.5]);
        a.observe_step(&[-1.5, -2.0]); // position 1 has 1 observation
        let r = a.report(2);
        assert_eq!(r.positions, 1);
    }

    #[test]
    fn heatmap_keeps_last_ten_steps() {
        let mut a = LocalityAnalyzer::new(PwlExp::paper_default());
        for t in 0..15 {
            let s = if t < 12 { -0.5 } else { -7.0 };
            a.observe_step(&[s]);
        }
        let hm = a.heatmap(5);
        assert_eq!(hm.len(), 1);
        assert_eq!(hm[0].len(), 10);
        // Last 3 entries are interval 1 ([-10,-6]); earlier ones interval 4.
        assert_eq!(hm[0][9], 1);
        assert_eq!(hm[0][0], 4);
    }

    #[test]
    fn growing_rows_register_new_positions() {
        let mut a = LocalityAnalyzer::new(PwlExp::paper_default());
        a.observe_step(&[-0.5]);
        a.observe_step(&[-0.5, -3.5]);
        a.observe_step(&[-0.5, -3.5, -8.0]);
        assert_eq!(a.positions(), 3);
        assert_eq!(a.counts(2)[1], 1);
    }

    #[test]
    fn empty_report() {
        let a = LocalityAnalyzer::new(PwlExp::paper_default());
        let r = a.report(1);
        assert_eq!(r.positions, 0);
        assert_eq!(r.top1, 0.0);
    }
}
