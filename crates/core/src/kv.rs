//! Per-head key-value cache (paper Eq. 1).
//!
//! Stores every key and value of the decoding history, exactly like the KV
//! cache an LLM keeps in HBM. The LAD decoder reads from it sparsely; the
//! reference attentions read it densely.
//!
//! Keys and values live in one contiguous arena each (`n × d`, row-major)
//! rather than per-position allocations, so center scoring and correction
//! reads walk sequential memory and appending a position never allocates
//! beyond the amortised arena growth.

/// The KV cache of a single attention head: `n` keys and values of dimension
/// `d`, appended one pair per decoding step.
///
/// # Example
///
/// ```
/// use lad_core::kv::KvCache;
///
/// let mut kv = KvCache::new(4);
/// kv.push(&[1.0, 0.0, 0.0, 0.0], &[0.5; 4]);
/// assert_eq!(kv.len(), 1);
/// assert_eq!(kv.key(0)[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    dim: usize,
    keys: Vec<f32>,
    values: Vec<f32>,
}

impl KvCache {
    /// Creates an empty cache for head dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> KvCache {
        assert!(dim > 0, "KvCache: dim must be positive");
        KvCache {
            dim,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Head dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of cached positions `n`.
    pub fn len(&self) -> usize {
        self.keys.len() / self.dim
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends a new key/value pair (paper Eq. 1). The vectors are copied
    /// into the arena; callers keep ownership of their buffers.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from `dim`.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "KvCache::push: key dim mismatch");
        assert_eq!(value.len(), self.dim, "KvCache::push: value dim mismatch");
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
    }

    /// Key at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn key(&self, position: usize) -> &[f32] {
        &self.keys[position * self.dim..(position + 1) * self.dim]
    }

    /// Value at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, position: usize) -> &[f32] {
        &self.values[position * self.dim..(position + 1) * self.dim]
    }

    /// View over all keys, oldest first.
    pub fn keys(&self) -> KeysView<'_> {
        KeysView {
            dim: self.dim,
            flat: &self.keys,
        }
    }

    /// Iterator over all values, oldest first.
    pub fn values(&self) -> impl Iterator<Item = &[f32]> {
        self.values.chunks_exact(self.dim)
    }

    /// Discards every position at index `len` and beyond, keeping the first
    /// `len`. Speculative decoding uses this to roll rejected draft rows back
    /// out of the arena; capacity is retained so re-growing never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len(), "KvCache::truncate: len beyond cache");
        self.keys.truncate(len * self.dim);
        self.values.truncate(len * self.dim);
    }

    /// Size in bytes of the cache under fp16 storage (`2 · n · d · 2` bytes —
    /// the quantity the paper's memory-access analysis is about).
    pub fn fp16_bytes(&self) -> usize {
        2 * self.len() * self.dim * 2
    }
}

/// Borrowed, contiguous view over a cache's keys.
#[derive(Debug, Clone, Copy)]
pub struct KeysView<'a> {
    dim: usize,
    flat: &'a [f32],
}

impl<'a> KeysView<'a> {
    /// Number of keys in the view.
    pub fn len(&self) -> usize {
        self.flat.len() / self.dim
    }

    /// `true` when the view holds no keys.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Key at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn key(&self, position: usize) -> &'a [f32] {
        &self.flat[position * self.dim..(position + 1) * self.dim]
    }

    /// Iterator over the keys, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.flat.chunks_exact(self.dim)
    }
}

/// Random access to a growing sequence of keys — the shape
/// [`crate::centers::CenterBook`] needs for Alg. 1. Implemented by the
/// arena-backed [`KeysView`] and by plain `[Vec<f32>]` slices (tests,
/// callers without a cache).
pub trait KeyLookup {
    /// Number of keys available.
    fn num_keys(&self) -> usize;

    /// Key at `position`.
    fn key_at(&self, position: usize) -> &[f32];
}

impl KeyLookup for KeysView<'_> {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        self.key(position)
    }
}

impl KeyLookup for [Vec<f32>] {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        &self[position]
    }
}

impl KeyLookup for Vec<Vec<f32>> {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        &self[position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut kv = KvCache::new(2);
        assert!(kv.is_empty());
        kv.push(&[1.0, 2.0], &[3.0, 4.0]);
        kv.push(&[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key(1), &[5.0, 6.0]);
        assert_eq!(kv.value(0), &[3.0, 4.0]);
        assert_eq!(kv.keys().len(), 2);
    }

    #[test]
    fn keys_view_iterates_in_order() {
        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 2.0], &[0.0; 2]);
        kv.push(&[3.0, 4.0], &[0.0; 2]);
        let collected: Vec<&[f32]> = kv.keys().iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let values: Vec<&[f32]> = kv.values().collect();
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn key_lookup_over_slices_and_views() {
        let owned = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let slice: &[Vec<f32>] = &owned;
        assert_eq!(KeyLookup::num_keys(slice), 2);
        assert_eq!(KeyLookup::key_at(slice, 1), &[0.0, 1.0]);

        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 0.0], &[0.0; 2]);
        let view = kv.keys();
        assert_eq!(view.num_keys(), 1);
        assert_eq!(view.key_at(0), &[1.0, 0.0]);
    }

    #[test]
    fn fp16_bytes_formula() {
        let mut kv = KvCache::new(128);
        for _ in 0..10 {
            kv.push(&[0.0; 128], &[0.0; 128]);
        }
        // 2 tensors * 10 positions * 128 dims * 2 bytes
        assert_eq!(kv.fp16_bytes(), 2 * 10 * 128 * 2);
    }

    #[test]
    fn truncate_discards_the_tail() {
        let mut kv = KvCache::new(2);
        for i in 0..4 {
            kv.push(&[i as f32, 0.0], &[0.0, i as f32]);
        }
        kv.truncate(2);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key(1), &[1.0, 0.0]);
        // Pushing after a truncate continues from the kept prefix.
        kv.push(&[9.0, 9.0], &[9.0, 9.0]);
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.key(2), &[9.0, 9.0]);
        kv.truncate(0);
        assert!(kv.is_empty());
    }

    #[test]
    #[should_panic(expected = "len beyond cache")]
    fn truncate_past_end_panics() {
        let mut kv = KvCache::new(2);
        kv.push(&[0.0; 2], &[0.0; 2]);
        kv.truncate(2);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        KvCache::new(3).push(&[1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_panics() {
        KvCache::new(0);
    }
}
