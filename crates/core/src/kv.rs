//! Per-head key-value cache (paper Eq. 1).
//!
//! Stores every key and value of the decoding history, exactly like the KV
//! cache an LLM keeps in HBM. The LAD decoder reads from it sparsely; the
//! reference attentions read it densely.
//!
//! Keys and values live in one contiguous arena each (`n × d`, row-major)
//! rather than per-position allocations, so center scoring and correction
//! reads walk sequential memory and appending a position never allocates
//! beyond the amortised arena growth.
//!
//! The arena has two storage precisions: the default `f32` layout every
//! existing caller sees unchanged, and an fp16 layout ([`KvPrecision::F16`],
//! raw IEEE binary16 bits in `u16` arenas) that halves KV memory traffic —
//! the quantity the paper's memory-access analysis is about. An fp16 cache is
//! read through the precision-aware kernels ([`KvCache::score_keys_into`],
//! [`KvCache::value_axpy`], [`KvCache::key_into`]); the raw `f32` slice
//! accessors panic on it rather than silently decoding per call.

use lad_math::{f16, simd, vector, F16};
use std::cell::Cell;

thread_local! {
    /// Bytes fetched from KV arenas on this thread through the read
    /// accessors below. A diagnostic shadow meter: the `bytes_moved`
    /// invariant tests reset it, run a (single-threaded) decode and compare
    /// the delta against the backend-reported [`crate::stats::StepStats`]
    /// traffic counters. Reads through a detached [`KeysView`] (center-book
    /// maintenance) are not metered — that traffic is modelled separately.
    static TRAFFIC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bytes read from KV arenas on this thread since the last
/// [`reset_traffic_bytes`].
pub fn traffic_bytes() -> u64 {
    TRAFFIC_BYTES.with(Cell::get)
}

/// Zeroes this thread's KV traffic meter.
pub fn reset_traffic_bytes() {
    TRAFFIC_BYTES.with(|c| c.set(0));
}

#[inline]
fn meter(bytes: usize) {
    TRAFFIC_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

/// Storage precision of a [`KvCache`]'s arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvPrecision {
    /// Full-precision `f32` arenas — the bit-exact reference layout.
    #[default]
    F32,
    /// IEEE binary16 arenas: keys/values are rounded to nearest-even on
    /// `push` and decoded exactly on read. Halves bytes moved per attention
    /// read at a bounded quantisation error (`≤ 2^-11` relative per element).
    F16,
}

impl KvPrecision {
    /// Bytes one stored element occupies.
    pub fn bytes_per_element(self) -> usize {
        match self {
            KvPrecision::F32 => 4,
            KvPrecision::F16 => 2,
        }
    }

    /// Static name used for spans and reports.
    pub const fn name(self) -> &'static str {
        match self {
            KvPrecision::F32 => "f32",
            KvPrecision::F16 => "f16",
        }
    }
}

/// The KV cache of a single attention head: `n` keys and values of dimension
/// `d`, appended one pair per decoding step.
///
/// # Example
///
/// ```
/// use lad_core::kv::KvCache;
///
/// let mut kv = KvCache::new(4);
/// kv.push(&[1.0, 0.0, 0.0, 0.0], &[0.5; 4]);
/// assert_eq!(kv.len(), 1);
/// assert_eq!(kv.key(0)[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    dim: usize,
    precision: KvPrecision,
    keys: Vec<f32>,
    values: Vec<f32>,
    keys16: Vec<u16>,
    values16: Vec<u16>,
}

impl KvCache {
    /// Creates an empty full-precision (`f32`) cache for head dimension
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> KvCache {
        KvCache::with_precision(dim, KvPrecision::F32)
    }

    /// Creates an empty cache with an explicit storage precision.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn with_precision(dim: usize, precision: KvPrecision) -> KvCache {
        assert!(dim > 0, "KvCache: dim must be positive");
        KvCache {
            dim,
            precision,
            keys: Vec::new(),
            values: Vec::new(),
            keys16: Vec::new(),
            values16: Vec::new(),
        }
    }

    /// Head dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage precision of the arenas.
    pub fn precision(&self) -> KvPrecision {
        self.precision
    }

    /// Number of cached positions `n`.
    pub fn len(&self) -> usize {
        match self.precision {
            KvPrecision::F32 => self.keys.len() / self.dim,
            KvPrecision::F16 => self.keys16.len() / self.dim,
        }
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.keys16.is_empty()
    }

    /// Appends a new key/value pair (paper Eq. 1). The vectors are copied
    /// into the arena; callers keep ownership of their buffers. Under
    /// [`KvPrecision::F16`] both are rounded to nearest-even fp16 here — the
    /// single lossy step of the fp16 path.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from `dim`.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "KvCache::push: key dim mismatch");
        assert_eq!(value.len(), self.dim, "KvCache::push: value dim mismatch");
        match self.precision {
            KvPrecision::F32 => {
                self.keys.extend_from_slice(key);
                self.values.extend_from_slice(value);
            }
            KvPrecision::F16 => {
                f16::encode_bits_into(key, &mut self.keys16);
                f16::encode_bits_into(value, &mut self.values16);
            }
        }
    }

    /// Key at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds, or on an fp16 cache (use [`KvCache::key_into`]
    /// / the precision-aware read kernels).
    pub fn key(&self, position: usize) -> &[f32] {
        self.assert_f32("key");
        meter(self.dim * 4);
        &self.keys[position * self.dim..(position + 1) * self.dim]
    }

    /// Value at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds, or on an fp16 cache (use
    /// [`KvCache::value_axpy`]).
    pub fn value(&self, position: usize) -> &[f32] {
        self.assert_f32("value");
        meter(self.dim * 4);
        &self.values[position * self.dim..(position + 1) * self.dim]
    }

    /// View over all keys, oldest first.
    ///
    /// # Panics
    ///
    /// Panics on an fp16 cache (use [`KvCache::score_keys_into`]).
    pub fn keys(&self) -> KeysView<'_> {
        self.assert_f32("keys");
        KeysView {
            dim: self.dim,
            flat: &self.keys,
        }
    }

    /// Iterator over all values, oldest first.
    ///
    /// # Panics
    ///
    /// Panics on an fp16 cache (use [`KvCache::value_axpy`]).
    pub fn values(&self) -> impl Iterator<Item = &[f32]> {
        self.assert_f32("values");
        self.values.chunks_exact(self.dim)
    }

    /// Raw fp16 bits of the key at `position` (fp16 caches only — tests and
    /// benches that want the encoded form directly).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or on an `f32` cache.
    pub fn key_bits(&self, position: usize) -> &[u16] {
        assert_eq!(
            self.precision,
            KvPrecision::F16,
            "KvCache::key_bits: f32 cache has no fp16 encoding"
        );
        meter(self.dim * 2);
        &self.keys16[position * self.dim..(position + 1) * self.dim]
    }

    /// Decodes the key at `position` into `out`, whatever the storage
    /// precision (fp16 decode is exact).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `out.len() != dim`.
    pub fn key_into(&self, position: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "KvCache::key_into: dim mismatch");
        meter(self.dim * self.precision.bytes_per_element());
        match self.precision {
            KvPrecision::F32 => {
                out.copy_from_slice(&self.keys[position * self.dim..(position + 1) * self.dim]);
            }
            KvPrecision::F16 => {
                f16::decode_bits_into(
                    &self.keys16[position * self.dim..(position + 1) * self.dim],
                    out,
                );
            }
        }
    }

    /// The hot attention score read: appends `qs · kᵢ` (as `f64`) to `out`
    /// for every cached position, oldest first. `qs` is the already-scaled
    /// query.
    ///
    /// In `f32` mode this is exactly the sequential [`vector::dot`] the
    /// reference attention always used — bit-identical to the pre-precision
    /// path. In fp16 mode keys stream at half the bytes through the
    /// dispatched fp16 dot kernel ([`simd::dot_f16`]); its SIMD variant
    /// reorders the in-dot summation and is bounded-error.
    ///
    /// # Panics
    ///
    /// Panics if `qs.len() != dim`.
    pub fn score_keys_into(&self, qs: &[f32], out: &mut Vec<f64>) {
        assert_eq!(qs.len(), self.dim, "KvCache::score_keys_into: dim mismatch");
        meter(self.len() * self.dim * self.precision.bytes_per_element());
        match self.precision {
            KvPrecision::F32 => {
                out.extend(
                    self.keys
                        .chunks_exact(self.dim)
                        .map(|k| f64::from(vector::dot(qs, k))),
                );
            }
            KvPrecision::F16 => {
                out.extend(
                    self.keys16
                        .chunks_exact(self.dim)
                        .map(|bits| f64::from(simd::dot_f16(qs, bits))),
                );
            }
        }
    }

    /// The hot attention value read: `acc[j] += w · v_position[j]`, decoding
    /// fp16 values exactly on the fly. In `f32` mode this is bit-identical to
    /// the loop the reference attention always ran.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `acc.len() != dim`.
    pub fn value_axpy(&self, position: usize, w: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.dim, "KvCache::value_axpy: dim mismatch");
        meter(self.dim * self.precision.bytes_per_element());
        let range = position * self.dim..(position + 1) * self.dim;
        match self.precision {
            KvPrecision::F32 => {
                for (slot, &vc) in acc.iter_mut().zip(&self.values[range]) {
                    *slot += w * f64::from(vc);
                }
            }
            KvPrecision::F16 => {
                for (slot, &b) in acc.iter_mut().zip(&self.values16[range]) {
                    *slot += w * f64::from(F16::from_bits(b).to_f32());
                }
            }
        }
    }

    /// Discards every position at index `len` and beyond, keeping the first
    /// `len`. Speculative decoding uses this to roll rejected draft rows back
    /// out of the arena; capacity is retained so re-growing never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len(), "KvCache::truncate: len beyond cache");
        match self.precision {
            KvPrecision::F32 => {
                self.keys.truncate(len * self.dim);
                self.values.truncate(len * self.dim);
            }
            KvPrecision::F16 => {
                self.keys16.truncate(len * self.dim);
                self.values16.truncate(len * self.dim);
            }
        }
    }

    /// Size in bytes of the cache under fp16 storage (`2 · n · d · 2` bytes —
    /// the quantity the paper's memory-access analysis is about).
    pub fn fp16_bytes(&self) -> usize {
        2 * self.len() * self.dim * 2
    }

    /// Actual bytes this cache's arenas occupy at its storage precision.
    pub fn stored_bytes(&self) -> usize {
        2 * self.len() * self.dim * self.precision.bytes_per_element()
    }

    fn assert_f32(&self, accessor: &str) {
        assert_eq!(
            self.precision,
            KvPrecision::F32,
            "KvCache::{accessor}: fp16 cache must be read through the \
             precision-aware kernels (score_keys_into / value_axpy / key_into)"
        );
    }
}

/// Borrowed, contiguous view over a cache's keys.
#[derive(Debug, Clone, Copy)]
pub struct KeysView<'a> {
    dim: usize,
    flat: &'a [f32],
}

impl<'a> KeysView<'a> {
    /// Number of keys in the view.
    pub fn len(&self) -> usize {
        self.flat.len() / self.dim
    }

    /// `true` when the view holds no keys.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Key at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn key(&self, position: usize) -> &'a [f32] {
        &self.flat[position * self.dim..(position + 1) * self.dim]
    }

    /// Iterator over the keys, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.flat.chunks_exact(self.dim)
    }
}

/// Random access to a growing sequence of keys — the shape
/// [`crate::centers::CenterBook`] needs for Alg. 1. Implemented by the
/// arena-backed [`KeysView`] and by plain `[Vec<f32>]` slices (tests,
/// callers without a cache).
pub trait KeyLookup {
    /// Number of keys available.
    fn num_keys(&self) -> usize;

    /// Key at `position`.
    fn key_at(&self, position: usize) -> &[f32];
}

impl KeyLookup for KeysView<'_> {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        self.key(position)
    }
}

impl KeyLookup for [Vec<f32>] {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        &self[position]
    }
}

impl KeyLookup for Vec<Vec<f32>> {
    fn num_keys(&self) -> usize {
        self.len()
    }

    fn key_at(&self, position: usize) -> &[f32] {
        &self[position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut kv = KvCache::new(2);
        assert!(kv.is_empty());
        kv.push(&[1.0, 2.0], &[3.0, 4.0]);
        kv.push(&[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key(1), &[5.0, 6.0]);
        assert_eq!(kv.value(0), &[3.0, 4.0]);
        assert_eq!(kv.keys().len(), 2);
    }

    #[test]
    fn keys_view_iterates_in_order() {
        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 2.0], &[0.0; 2]);
        kv.push(&[3.0, 4.0], &[0.0; 2]);
        let collected: Vec<&[f32]> = kv.keys().iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let values: Vec<&[f32]> = kv.values().collect();
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn key_lookup_over_slices_and_views() {
        let owned = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let slice: &[Vec<f32>] = &owned;
        assert_eq!(KeyLookup::num_keys(slice), 2);
        assert_eq!(KeyLookup::key_at(slice, 1), &[0.0, 1.0]);

        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 0.0], &[0.0; 2]);
        let view = kv.keys();
        assert_eq!(view.num_keys(), 1);
        assert_eq!(view.key_at(0), &[1.0, 0.0]);
    }

    #[test]
    fn fp16_bytes_formula() {
        let mut kv = KvCache::new(128);
        for _ in 0..10 {
            kv.push(&[0.0; 128], &[0.0; 128]);
        }
        // 2 tensors * 10 positions * 128 dims * 2 bytes
        assert_eq!(kv.fp16_bytes(), 2 * 10 * 128 * 2);
    }

    #[test]
    fn truncate_discards_the_tail() {
        let mut kv = KvCache::new(2);
        for i in 0..4 {
            kv.push(&[i as f32, 0.0], &[0.0, i as f32]);
        }
        kv.truncate(2);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key(1), &[1.0, 0.0]);
        // Pushing after a truncate continues from the kept prefix.
        kv.push(&[9.0, 9.0], &[9.0, 9.0]);
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.key(2), &[9.0, 9.0]);
        kv.truncate(0);
        assert!(kv.is_empty());
    }

    #[test]
    #[should_panic(expected = "len beyond cache")]
    fn truncate_past_end_panics() {
        let mut kv = KvCache::new(2);
        kv.push(&[0.0; 2], &[0.0; 2]);
        kv.truncate(2);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        KvCache::new(3).push(&[1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_panics() {
        KvCache::new(0);
    }

    #[test]
    fn f32_read_kernels_match_dense_accessors_bitwise() {
        use lad_math::vector;
        let mut kv = KvCache::new(3);
        for i in 0..5 {
            let base = i as f32;
            kv.push(
                &[base + 0.1, base - 0.2, base * 0.3],
                &[base * 1.1, -base, base + 7.0],
            );
        }
        let qs = [0.25f32, -1.5, 0.75];
        let mut scored = Vec::new();
        kv.score_keys_into(&qs, &mut scored);
        assert_eq!(scored.len(), kv.len());
        for (i, &s) in scored.iter().enumerate() {
            assert_eq!(s, f64::from(vector::dot(&qs, kv.key(i))));
        }
        let mut via_axpy = vec![0.0f64; 3];
        let mut dense = vec![0.0f64; 3];
        for i in 0..kv.len() {
            let w = 0.5 + i as f64;
            kv.value_axpy(i, w, &mut via_axpy);
            for (slot, &vc) in dense.iter_mut().zip(kv.value(i)) {
                *slot += w * f64::from(vc);
            }
        }
        assert_eq!(via_axpy, dense);
        let mut key_buf = vec![0.0f32; 3];
        kv.key_into(2, &mut key_buf);
        assert_eq!(&key_buf[..], kv.key(2));
    }

    #[test]
    fn traffic_meter_counts_read_bytes() {
        let mut kv = KvCache::new(4);
        for i in 0..3 {
            kv.push(&[i as f32; 4], &[1.0; 4]);
        }
        reset_traffic_bytes();
        assert_eq!(traffic_bytes(), 0);
        let _ = kv.key(0); // 16 B
        let _ = kv.value(1); // 16 B
        let mut scores = Vec::new();
        kv.score_keys_into(&[1.0; 4], &mut scores); // 3 keys = 48 B
        let mut acc = vec![0.0f64; 4];
        kv.value_axpy(2, 1.0, &mut acc); // 16 B
        let mut buf = vec![0.0f32; 4];
        kv.key_into(0, &mut buf); // 16 B
        assert_eq!(traffic_bytes(), 16 + 16 + 48 + 16 + 16);

        // fp16 arenas meter at two bytes per element.
        let mut kv16 = KvCache::with_precision(4, KvPrecision::F16);
        kv16.push(&[1.0; 4], &[2.0; 4]);
        reset_traffic_bytes();
        kv16.key_into(0, &mut buf); // 8 B
        kv16.value_axpy(0, 1.0, &mut acc); // 8 B
        let _ = kv16.key_bits(0); // 8 B
        assert_eq!(traffic_bytes(), 24);
        reset_traffic_bytes();
    }

    #[test]
    fn f16_cache_quantizes_on_push_and_decodes_exactly() {
        use lad_math::F16;
        let mut kv = KvCache::with_precision(2, KvPrecision::F16);
        assert_eq!(kv.precision(), KvPrecision::F16);
        kv.push(&[1.0 / 3.0, -2.5], &[0.1, 4.0]);
        assert_eq!(kv.len(), 1);
        let mut key = vec![0.0f32; 2];
        kv.key_into(0, &mut key);
        // Decode returns exactly the fp16-rounded values: -2.5 is exact,
        // 1/3 is rounded once at push time.
        assert_eq!(key[0], F16::from_f32(1.0 / 3.0).to_f32());
        assert_eq!(key[1], -2.5);
        assert_eq!(kv.key_bits(0).len(), 2);

        // Scores and value reads go through the quantised data.
        let qs = [1.0f32, 1.0];
        let mut scored = Vec::new();
        kv.score_keys_into(&qs, &mut scored);
        let expect = f64::from(lad_math::simd::dot_f16_scalar(&qs, kv.key_bits(0)));
        assert!((scored[0] - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
        let mut acc = vec![0.0f64; 2];
        kv.value_axpy(0, 2.0, &mut acc);
        assert_eq!(acc[0], 2.0 * f64::from(F16::from_f32(0.1).to_f32()));
        assert_eq!(acc[1], 8.0);
    }

    #[test]
    fn f16_truncate_and_byte_accounting() {
        let mut kv = KvCache::with_precision(4, KvPrecision::F16);
        for i in 0..6 {
            kv.push(&[i as f32; 4], &[1.0; 4]);
        }
        assert_eq!(kv.stored_bytes(), 2 * 6 * 4 * 2);
        assert_eq!(kv.fp16_bytes(), kv.stored_bytes());
        kv.truncate(2);
        assert_eq!(kv.len(), 2);
        let mut key = vec![0.0f32; 4];
        kv.key_into(1, &mut key);
        assert_eq!(key, vec![1.0; 4]);

        let f32_kv = KvCache::new(4);
        assert_eq!(f32_kv.precision().bytes_per_element(), 4);
        assert_eq!(KvPrecision::F16.bytes_per_element(), 2);
        assert_eq!(KvPrecision::F16.name(), "f16");
    }

    #[test]
    #[should_panic(expected = "precision-aware kernels")]
    fn f16_dense_key_accessor_panics() {
        let mut kv = KvCache::with_precision(2, KvPrecision::F16);
        kv.push(&[1.0, 2.0], &[3.0, 4.0]);
        let _ = kv.key(0);
    }

    #[test]
    #[should_panic(expected = "precision-aware kernels")]
    fn f16_keys_view_panics() {
        let kv = KvCache::with_precision(2, KvPrecision::F16);
        let _ = kv.keys();
    }

    #[test]
    #[should_panic(expected = "f32 cache has no fp16 encoding")]
    fn key_bits_on_f32_cache_panics() {
        let mut kv = KvCache::new(2);
        kv.push(&[1.0, 2.0], &[3.0, 4.0]);
        let _ = kv.key_bits(0);
    }
}
