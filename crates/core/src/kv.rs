//! Per-head key-value cache (paper Eq. 1).
//!
//! Stores every key and value of the decoding history, exactly like the KV
//! cache an LLM keeps in HBM. The LAD decoder reads from it sparsely; the
//! reference attentions read it densely.

/// The KV cache of a single attention head: `n` keys and values of dimension
/// `d`, appended one pair per decoding step.
///
/// # Example
///
/// ```
/// use lad_core::kv::KvCache;
///
/// let mut kv = KvCache::new(4);
/// kv.push(vec![1.0, 0.0, 0.0, 0.0], vec![0.5; 4]);
/// assert_eq!(kv.len(), 1);
/// assert_eq!(kv.key(0)[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    dim: usize,
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
}

impl KvCache {
    /// Creates an empty cache for head dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> KvCache {
        assert!(dim > 0, "KvCache: dim must be positive");
        KvCache {
            dim,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Head dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of cached positions `n`.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends a new key/value pair (paper Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if either vector's length differs from `dim`.
    pub fn push(&mut self, key: Vec<f32>, value: Vec<f32>) {
        assert_eq!(key.len(), self.dim, "KvCache::push: key dim mismatch");
        assert_eq!(value.len(), self.dim, "KvCache::push: value dim mismatch");
        self.keys.push(key);
        self.values.push(value);
    }

    /// Key at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn key(&self, position: usize) -> &[f32] {
        &self.keys[position]
    }

    /// Value at `position`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, position: usize) -> &[f32] {
        &self.values[position]
    }

    /// All keys, oldest first.
    pub fn keys(&self) -> &[Vec<f32>] {
        &self.keys
    }

    /// All values, oldest first.
    pub fn values(&self) -> &[Vec<f32>] {
        &self.values
    }

    /// Size in bytes of the cache under fp16 storage (`2 · n · d · 2` bytes —
    /// the quantity the paper's memory-access analysis is about).
    pub fn fp16_bytes(&self) -> usize {
        2 * self.len() * self.dim * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut kv = KvCache::new(2);
        assert!(kv.is_empty());
        kv.push(vec![1.0, 2.0], vec![3.0, 4.0]);
        kv.push(vec![5.0, 6.0], vec![7.0, 8.0]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key(1), &[5.0, 6.0]);
        assert_eq!(kv.value(0), &[3.0, 4.0]);
        assert_eq!(kv.keys().len(), 2);
    }

    #[test]
    fn fp16_bytes_formula() {
        let mut kv = KvCache::new(128);
        for _ in 0..10 {
            kv.push(vec![0.0; 128], vec![0.0; 128]);
        }
        // 2 tensors * 10 positions * 128 dims * 2 bytes
        assert_eq!(kv.fp16_bytes(), 2 * 10 * 128 * 2);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        KvCache::new(3).push(vec![1.0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_panics() {
        KvCache::new(0);
    }
}
