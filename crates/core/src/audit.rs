//! Decoding-accuracy audit (paper Sec. III-F, "Ensuring Decoding Accuracy").
//!
//! The paper categorises interval misidentifications into false positives
//! (harmless — their correction factors compute to zero) and false negatives
//! (the only error source), and observes that a false negative's actual
//! interval is usually the position's top-2 probable interval, which
//! neighbours its mode — bounding the coefficient deviation. This module
//! replays a stream through an approximate-identification head, an oracle
//! head and the exact-softmax reference simultaneously and measures exactly
//! those quantities.

use crate::decoder::{Identification, LadAttention, LadConfig};
use crate::kv::KvCache;
use crate::reference;
use lad_math::vector;
use serde::{Deserialize, Serialize};

/// One decoding step's per-head inputs: `(query, key, value)`.
pub type QkvTriple = (Vec<f32>, Vec<f32>, Vec<f32>);

/// A per-head stream of decoding-step inputs.
pub type QkvStream = Vec<QkvTriple>;

/// Measured error anatomy of a decode stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditReport {
    /// Decoding steps audited.
    pub steps: usize,
    /// Total (position, step) identification checks on cached positions.
    pub cached_checks: usize,
    /// Positions misidentified as non-active (the error source).
    pub false_negatives: usize,
    /// Positions misidentified as active (harmless).
    pub false_positives: usize,
    /// False negatives re-derived from exact scores (the adjacency metric's
    /// own denominator — it can differ slightly from `false_negatives`,
    /// which uses the decoder's internal running maximum).
    pub rederived_false_negatives: usize,
    /// Re-derived false negatives whose actual interval neighbours the mode
    /// interval (the paper's "top-2 adjacent" mitigation).
    pub adjacent_false_negatives: usize,
    /// Mean relative L2 error of the approximate head vs exact attention.
    pub mean_output_error: f64,
    /// Mean relative L2 error of the oracle head vs exact attention (the
    /// pure PWL-approximation floor).
    pub mean_pwl_error: f64,
}

impl AuditReport {
    /// Fraction of cached checks that were false negatives (paper: ~1 %).
    pub fn false_negative_rate(&self) -> f64 {
        if self.cached_checks == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / self.cached_checks as f64
    }

    /// Fraction of false negatives landing in an interval adjacent to the
    /// mode (paper: "in most cases").
    pub fn adjacent_fraction(&self) -> f64 {
        if self.rederived_false_negatives == 0 {
            return 1.0;
        }
        self.adjacent_false_negatives as f64 / self.rederived_false_negatives as f64
    }

    /// Error attributable to misidentification alone (above the PWL floor).
    pub fn identification_error(&self) -> f64 {
        (self.mean_output_error - self.mean_pwl_error).max(0.0)
    }
}

/// Audits a decode stream under the given configuration. The configuration's
/// identification mode is overridden (approximate for the unit under test,
/// oracle for the baseline).
pub fn audit_stream(cfg: &LadConfig, stream: &[QkvTriple]) -> AuditReport {
    assert!(!stream.is_empty(), "audit_stream: empty stream");
    let d = stream[0].0.len();
    let mut approx_cfg = cfg.clone();
    approx_cfg.identification = Identification::Approximate;
    approx_cfg.diagnostics = true;
    let mut oracle_cfg = cfg.clone();
    oracle_cfg.identification = Identification::Oracle;

    let mut approx = LadAttention::new(d, approx_cfg);
    let mut oracle = LadAttention::new(d, oracle_cfg);
    let mut shadow = KvCache::new(d);

    let mut report = AuditReport::default();
    let mut output_err = 0.0f64;
    let mut pwl_err = 0.0f64;

    for (q, k, v) in stream {
        shadow.push(k, v);
        let exact = reference::exact_attention(q, &shadow);

        let a = approx.step(q, k, v);
        let o = oracle.step(q, k, v);

        report.steps += 1;
        report.cached_checks += a.stats.n - a.stats.window;
        report.false_negatives += a.stats.false_negatives;
        report.false_positives += a.stats.false_positives;
        output_err += f64::from(vector::relative_l2(&a.output, &exact));
        pwl_err += f64::from(vector::relative_l2(&o.output, &exact));

        // Adjacency of false negatives: compare actual vs cached interval
        // for every misidentified position (re-derived from exact scores).
        let (rederived, adjacent) = count_false_negatives(&approx, q, &shadow);
        report.rederived_false_negatives += rederived;
        report.adjacent_false_negatives += adjacent;
    }

    report.mean_output_error = output_err / report.steps as f64;
    report.mean_pwl_error = pwl_err / report.steps as f64;
    report
}

/// Re-derives the false-negative set of the *last* step from exact scores
/// and counts (total, adjacent-to-mode) misses.
fn count_false_negatives(head: &LadAttention, q: &[f32], kv: &KvCache) -> (usize, usize) {
    let pwl = &head.config().pwl;
    let scores = reference::scores(q, kv);
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0usize;
    let mut adjacent = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        let Some(cached) = head.cached_interval(i) else {
            continue;
        };
        let actual = pwl.interval_of(s - m);
        // A false negative: the cached contribution is stale and LAD did not
        // correct it this step.
        if actual != cached && !head.was_corrected_last_step(i) {
            total += 1;
            if actual.abs_diff(cached) == 1 {
                adjacent += 1;
            }
        }
    }
    (total, adjacent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::pwl::PwlExp;
    use lad_math::Rng;

    fn clustered_stream(seed: u64, steps: usize, d: usize) -> QkvStream {
        let mut rng = Rng::new(seed);
        let dirs: Vec<Vec<f32>> = (0..5).map(|_| rng.normal_vec(d, 1.0)).collect();
        let mut q = rng.normal_vec(d, 1.0);
        (0..steps)
            .map(|i| {
                for slot in q.iter_mut() {
                    *slot = 0.99 * *slot + 0.1 * rng.normal() as f32;
                }
                let mut k: Vec<f32> = dirs[i % 5]
                    .iter()
                    .map(|&x| x * (0.8 + 0.4 * rng.next_f32()))
                    .collect();
                for slot in k.iter_mut() {
                    *slot += 0.03 * rng.normal() as f32;
                }
                (q.clone(), k, rng.normal_vec(d, 1.0))
            })
            .collect()
    }

    #[test]
    fn audit_measures_the_error_anatomy() {
        let cfg = LadConfig::new(PwlExp::accurate_default());
        let report = audit_stream(&cfg, &clustered_stream(3, 120, 16));
        assert_eq!(report.steps, 120);
        assert!(report.cached_checks > 0);
        // Clustered keys keep identification errors rare.
        assert!(
            report.false_negative_rate() < 0.08,
            "fn rate {}",
            report.false_negative_rate()
        );
        // The oracle error is the PWL floor; approx can only be worse.
        assert!(report.mean_output_error >= report.mean_pwl_error - 1e-9);
        assert!(
            report.mean_pwl_error < 0.02,
            "pwl floor {}",
            report.mean_pwl_error
        );
        assert!(
            report.mean_output_error < 0.05,
            "output {}",
            report.mean_output_error
        );
    }

    #[test]
    fn false_negatives_are_mostly_adjacent() {
        // Paper Sec. III-F: the actual interval of a false negative is its
        // top-2 probable interval in most cases, which neighbours the mode.
        let cfg = LadConfig::new(PwlExp::accurate_default());
        let report = audit_stream(&cfg, &clustered_stream(5, 200, 16));
        if report.rederived_false_negatives >= 5 {
            assert!(
                report.adjacent_fraction() > 0.5,
                "adjacent fraction {}",
                report.adjacent_fraction()
            );
        }
    }

    #[test]
    fn tighter_threshold_lowers_identification_error() {
        let stream = clustered_stream(7, 120, 16);
        let mut loose = LadConfig::new(PwlExp::accurate_default());
        loose.collinearity_threshold = 0.9;
        let mut tight = loose.clone();
        tight.collinearity_threshold = 0.999;
        let loose_report = audit_stream(&loose, &stream);
        let tight_report = audit_stream(&tight, &stream);
        assert!(tight_report.false_negatives <= loose_report.false_negatives);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_rejected() {
        audit_stream(&LadConfig::default(), &[]);
    }
}
