//! Per-step instrumentation of the LAD decoder.
//!
//! The accelerator model consumes these statistics — they are the `|C|`,
//! `|M|`, `|J|`, `|U|` and prefetch-hit quantities that drive the pipeline
//! latency (paper Eq. 7) and the HBM traffic model.

use serde::{Deserialize, Serialize};

/// Statistics of a single LAD decoding step for one attention head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StepStats {
    /// KV cache length `n` after the step's append.
    pub n: usize,
    /// Number of directional centers `|C|` read for identification.
    pub centers: usize,
    /// Number of large-mode positions `|M|` scored exactly (Sec. III-F).
    pub large_mode_exact: usize,
    /// Number of *cached* active positions `|J|` needing correction reads.
    pub active: usize,
    /// Number of latest-window positions processed outside the caches.
    pub window: usize,
    /// Number of mode updates `|U|` applied to the intermediate caches.
    pub mode_updates: usize,
    /// Active positions *not* active in the previous step — the prefetch
    /// misses that must hit HBM during the attention period (Sec. IV-D).
    pub new_active: usize,
    /// Positions misidentified as non-active (only populated when the decoder
    /// runs with diagnostics against the oracle; 0 otherwise).
    pub false_negatives: usize,
    /// Positions misidentified as active (harmless: corrections are 0).
    pub false_positives: usize,
    /// 1 when the PWL denominator degenerated (near-zero / negative /
    /// non-finite) and the step fell back to exact window-only softmax.
    pub den_fallbacks: usize,
}

impl StepStats {
    /// Positions whose keys/values were actually read from the KV cache this
    /// step (corrections + window), the `2|J|d`-traffic driver.
    pub fn kv_reads(&self) -> usize {
        self.active + self.window
    }

    /// Prefetch hit ratio against the previous step's active set
    /// (1.0 when nothing was active).
    pub fn hit_ratio(&self) -> f64 {
        if self.active == 0 {
            return 1.0;
        }
        1.0 - self.new_active as f64 / self.active as f64
    }

    /// Fraction of cached positions identified active.
    pub fn active_fraction(&self) -> f64 {
        let cached = self.n.saturating_sub(self.window);
        if cached == 0 {
            return 0.0;
        }
        self.active as f64 / cached as f64
    }
}

/// Aggregate over many steps (and many heads) of [`StepStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of steps aggregated.
    pub steps: usize,
    /// Mean `|C|`.
    pub mean_centers: f64,
    /// Mean `|M|`.
    pub mean_large_mode: f64,
    /// Mean `|J|` (cached active positions).
    pub mean_active: f64,
    /// Mean `|U|`.
    pub mean_mode_updates: f64,
    /// Mean prefetch hit ratio.
    pub mean_hit_ratio: f64,
    /// Mean fraction of cached positions active.
    pub mean_active_fraction: f64,
    /// Mean misidentification counts.
    pub mean_false_negatives: f64,
}

impl StatsSummary {
    /// Aggregates a sequence of step statistics.
    pub fn from_steps<'a>(steps: impl IntoIterator<Item = &'a StepStats>) -> StatsSummary {
        let mut sum = StatsSummary::default();
        for s in steps {
            sum.steps += 1;
            sum.mean_centers += s.centers as f64;
            sum.mean_large_mode += s.large_mode_exact as f64;
            sum.mean_active += s.active as f64;
            sum.mean_mode_updates += s.mode_updates as f64;
            sum.mean_hit_ratio += s.hit_ratio();
            sum.mean_active_fraction += s.active_fraction();
            sum.mean_false_negatives += s.false_negatives as f64;
        }
        if sum.steps > 0 {
            let n = sum.steps as f64;
            sum.mean_centers /= n;
            sum.mean_large_mode /= n;
            sum.mean_active /= n;
            sum.mean_mode_updates /= n;
            sum.mean_hit_ratio /= n;
            sum.mean_active_fraction /= n;
            sum.mean_false_negatives /= n;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_reads_and_ratios() {
        let s = StepStats {
            n: 100,
            centers: 5,
            large_mode_exact: 3,
            active: 10,
            window: 17,
            mode_updates: 2,
            new_active: 2,
            false_negatives: 0,
            false_positives: 1,
            den_fallbacks: 0,
        };
        assert_eq!(s.kv_reads(), 27);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert!((s.active_fraction() - 10.0 / 83.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_with_no_active_is_one() {
        let s = StepStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        assert_eq!(s.active_fraction(), 0.0);
    }

    #[test]
    fn summary_averages() {
        let a = StepStats {
            n: 10,
            active: 4,
            new_active: 2,
            window: 2,
            centers: 2,
            ..StepStats::default()
        };
        let b = StepStats {
            n: 20,
            active: 0,
            window: 2,
            centers: 4,
            ..StepStats::default()
        };
        let sum = StatsSummary::from_steps([&a, &b]);
        assert_eq!(sum.steps, 2);
        assert!((sum.mean_centers - 3.0).abs() < 1e-12);
        assert!((sum.mean_active - 2.0).abs() < 1e-12);
        assert!((sum.mean_hit_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let sum = StatsSummary::from_steps(std::iter::empty());
        assert_eq!(sum.steps, 0);
        assert_eq!(sum.mean_active, 0.0);
    }
}
