//! Per-step instrumentation of the LAD decoder.
//!
//! The accelerator model consumes these statistics — they are the `|C|`,
//! `|M|`, `|J|`, `|U|` and prefetch-hit quantities that drive the pipeline
//! latency (paper Eq. 7) and the HBM traffic model.

use lad_obs::StageBreakdown;
use serde::{Deserialize, Serialize};

/// Statistics of a single LAD decoding step for one attention head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StepStats {
    /// KV cache length `n` after the step's append.
    pub n: usize,
    /// Number of directional centers `|C|` read for identification.
    pub centers: usize,
    /// Number of large-mode positions `|M|` scored exactly (Sec. III-F).
    pub large_mode_exact: usize,
    /// Number of *cached* active positions `|J|` needing correction reads.
    pub active: usize,
    /// Number of latest-window positions processed outside the caches.
    pub window: usize,
    /// Number of mode updates `|U|` applied to the intermediate caches.
    pub mode_updates: usize,
    /// Active positions *not* active in the previous step — the prefetch
    /// misses that must hit HBM during the attention period (Sec. IV-D).
    pub new_active: usize,
    /// Positions misidentified as non-active (only populated when the decoder
    /// runs with diagnostics against the oracle; 0 otherwise).
    pub false_negatives: usize,
    /// Positions misidentified as active (harmless: corrections are 0).
    pub false_positives: usize,
    /// 1 when the PWL denominator degenerated (near-zero / negative /
    /// non-finite) and the step fell back to exact window-only softmax.
    pub den_fallbacks: usize,
    /// Positions that received an attention score this step (exact or
    /// approximated). Full-cache backends score all `n`; evicting backends
    /// score only their live set.
    pub keys_scored: usize,
    /// Key vectors physically fetched from the KV arena this step. For LAD
    /// this counts the sparse exact-score fetches (centers, large modes,
    /// window, corrections, maintenance) — the bandwidth the accelerator
    /// actually spends; center-book internal maintenance reads are modelled
    /// by `centers` and excluded here.
    pub keys_read: usize,
    /// KV arena bytes fetched this step (keys and values, at the arena's
    /// storage precision) — the quality-per-byte-moved denominator. Matches
    /// the [`crate::kv`] traffic meter for every backend.
    pub bytes_moved: usize,
    /// Positions evicted (masked dead) by the backend this step; 0 for
    /// non-evicting backends.
    pub evictions: usize,
    /// Width of the head fan-out this step was scheduled with (1 = inline
    /// sequential, >1 = shared-pool fan-out, 0 = head stepped outside a
    /// session). Scheduling metadata only — see [`StepStats::algorithmic`].
    pub fanout_width: usize,
}

impl StepStats {
    /// Positions whose keys/values were actually read from the KV cache this
    /// step (corrections + window), the `2|J|d`-traffic driver.
    pub fn kv_reads(&self) -> usize {
        self.active + self.window
    }

    /// Prefetch hit ratio against the previous step's active set
    /// (1.0 when nothing was active).
    pub fn hit_ratio(&self) -> f64 {
        if self.active == 0 {
            return 1.0;
        }
        1.0 - self.new_active as f64 / self.active as f64
    }

    /// Fraction of cached positions identified active.
    pub fn active_fraction(&self) -> f64 {
        let cached = self.n.saturating_sub(self.window);
        if cached == 0 {
            return 0.0;
        }
        self.active as f64 / cached as f64
    }

    /// The scheduling-independent view of this step: every field the LAD
    /// algorithm itself determines, with scheduling metadata (the fan-out
    /// width) zeroed. Two decodes of the same stream must agree on this view
    /// *exactly*, whatever pool/parallelism they ran under — the invariant
    /// the differential harness asserts.
    pub fn algorithmic(mut self) -> StepStats {
        self.fanout_width = 0;
        self
    }
}

/// Scheduling counters of a step-synchronous batched decode: how many
/// cross-sample GEMM calls ran and how many per-step synchronisation
/// barriers the batch engine crossed. Like [`StepStats::fanout_width`] this
/// is scheduling metadata — it never affects tokens or algorithmic stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GemmBatchMetrics {
    /// Batched matrix-matrix projection calls (one per linear layer per
    /// step on the batched path; 0 on per-sample paths).
    pub gemm_calls: usize,
    /// Step-synchronous barriers crossed (one per global decode step the
    /// batch advanced through; 0 on per-sample paths).
    pub sync_barriers: usize,
}

/// Aggregate over many steps (and many heads) of [`StepStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of steps aggregated.
    pub steps: usize,
    /// Mean `|C|`.
    pub mean_centers: f64,
    /// Mean `|M|`.
    pub mean_large_mode: f64,
    /// Mean `|J|` (cached active positions).
    pub mean_active: f64,
    /// Mean `|U|`.
    pub mean_mode_updates: f64,
    /// Mean prefetch hit ratio.
    pub mean_hit_ratio: f64,
    /// Mean fraction of cached positions active.
    pub mean_active_fraction: f64,
    /// Mean misidentification counts.
    pub mean_false_negatives: f64,
    /// Mean harmless misidentifications (corrections of 0).
    pub mean_false_positives: f64,
    /// Mean per-step KV-cache reads (`active + window`, the `2|J|d` driver).
    pub mean_kv_reads: f64,
    /// Total degenerate-denominator fallbacks across the aggregated steps —
    /// a *sum*, not a mean: a single fallback anywhere is worth surfacing.
    pub total_den_fallbacks: usize,
    /// Mean positions scored per step.
    pub mean_keys_scored: f64,
    /// Mean key vectors fetched from the KV arena per step.
    pub mean_keys_read: f64,
    /// Total KV arena bytes fetched across the aggregated steps — a *sum*:
    /// the quality-per-byte-moved denominator of the backend comparison.
    pub total_bytes_moved: usize,
    /// Total positions evicted across the aggregated steps — a *sum*.
    pub total_evictions: usize,
    /// Mean scheduled head fan-out width.
    pub mean_fanout_width: f64,
    /// Worker-pool tasks stolen while these steps decoded (0 unless injected
    /// via [`StatsSummary::with_pool_metrics`]).
    pub pool_tasks_stolen: usize,
    /// Worker-pool idle wakeups while these steps decoded (0 unless injected
    /// via [`StatsSummary::with_pool_metrics`]).
    pub pool_idle_wakeups: usize,
    /// Cumulative nanoseconds pool workers spent parked while these steps
    /// decoded (0 unless injected via [`StatsSummary::with_pool_metrics`]).
    /// Nonzero with `pool_tasks_stolen == 0` means workers starved rather
    /// than never contended — the single-core diagnostic.
    pub pool_park_nanos: u64,
    /// Batched-GEMM projection calls during the decode (0 unless injected
    /// via [`StatsSummary::with_gemm_metrics`]).
    pub gemm_calls: usize,
    /// Step-synchronous barriers during the decode (0 unless injected via
    /// [`StatsSummary::with_gemm_metrics`]).
    pub sync_barriers: usize,
    /// Per-stage latency histograms (p50/p95/p99 per span name), built from
    /// a recorder capture of the decode (empty unless injected via
    /// [`StatsSummary::with_stage_latencies`]). Timing metadata only: like
    /// the pool/GEMM counters it never affects tokens or algorithmic stats.
    pub stage_latencies: StageBreakdown,
    /// Mean fraction of speculative draft tokens the verifier accepted,
    /// in [0, 1] (0 unless injected via [`StatsSummary::with_spec_metrics`]).
    /// Scheduling metadata: speculation commits only greedy-verified tokens,
    /// so acceptance never changes the stream — only its cost.
    pub spec_acceptance_rate: f64,
    /// Mean tokens committed per speculative verify round (>= 1.0 once
    /// injected: the bonus token always commits; 0 unless injected via
    /// [`StatsSummary::with_spec_metrics`]).
    pub spec_accepted_len: f64,
}

impl StatsSummary {
    /// Aggregates a sequence of step statistics.
    pub fn from_steps<'a>(steps: impl IntoIterator<Item = &'a StepStats>) -> StatsSummary {
        let mut sum = StatsSummary::default();
        for s in steps {
            sum.steps += 1;
            sum.mean_centers += s.centers as f64;
            sum.mean_large_mode += s.large_mode_exact as f64;
            sum.mean_active += s.active as f64;
            sum.mean_mode_updates += s.mode_updates as f64;
            sum.mean_hit_ratio += s.hit_ratio();
            sum.mean_active_fraction += s.active_fraction();
            sum.mean_false_negatives += s.false_negatives as f64;
            sum.mean_false_positives += s.false_positives as f64;
            sum.mean_kv_reads += s.kv_reads() as f64;
            sum.total_den_fallbacks += s.den_fallbacks;
            sum.mean_keys_scored += s.keys_scored as f64;
            sum.mean_keys_read += s.keys_read as f64;
            sum.total_bytes_moved += s.bytes_moved;
            sum.total_evictions += s.evictions;
            sum.mean_fanout_width += s.fanout_width as f64;
        }
        if sum.steps > 0 {
            let n = sum.steps as f64;
            sum.mean_centers /= n;
            sum.mean_large_mode /= n;
            sum.mean_active /= n;
            sum.mean_mode_updates /= n;
            sum.mean_hit_ratio /= n;
            sum.mean_active_fraction /= n;
            sum.mean_false_negatives /= n;
            sum.mean_false_positives /= n;
            sum.mean_kv_reads /= n;
            sum.mean_keys_scored /= n;
            sum.mean_keys_read /= n;
            sum.mean_fanout_width /= n;
        }
        sum
    }

    /// Attaches worker-pool scheduling counters (metered around the decode
    /// that produced these steps) to the summary.
    pub fn with_pool_metrics(mut self, metrics: crate::pool::PoolMetrics) -> StatsSummary {
        self.pool_tasks_stolen = metrics.tasks_stolen;
        self.pool_idle_wakeups = metrics.idle_wakeups;
        self.pool_park_nanos = metrics.park_nanos;
        self
    }

    /// Attaches per-stage latency histograms (aggregated from a recorder
    /// capture of the decode) to the summary.
    pub fn with_stage_latencies(mut self, stages: StageBreakdown) -> StatsSummary {
        self.stage_latencies = stages;
        self
    }

    /// The human-readable stage-breakdown table: per-stage count and
    /// p50/p95/p99/total latencies, followed by the pool park-time line.
    /// Empty string when no stage latencies were attached.
    pub fn stage_table(&self) -> String {
        if self.stage_latencies.is_empty() {
            return String::new();
        }
        let mut table = self.stage_latencies.render();
        table.push_str(&format!(
            "pool: park {} total, {} steals, {} idle wakeups\n",
            lad_obs::breakdown::fmt_ns(self.pool_park_nanos),
            self.pool_tasks_stolen,
            self.pool_idle_wakeups,
        ));
        table
    }

    /// Attaches the batched-decode scheduling counters (batched-GEMM calls
    /// and step barriers) to the summary.
    pub fn with_gemm_metrics(mut self, metrics: GemmBatchMetrics) -> StatsSummary {
        self.gemm_calls = metrics.gemm_calls;
        self.sync_barriers = metrics.sync_barriers;
        self
    }

    /// Attaches speculative-decoding acceptance counters (metered over the
    /// decode that produced these steps) to the summary.
    ///
    /// # Panics
    ///
    /// Panics if `acceptance_rate` is outside [0, 1] or `accepted_len` is
    /// negative.
    pub fn with_spec_metrics(mut self, acceptance_rate: f64, accepted_len: f64) -> StatsSummary {
        assert!(
            (0.0..=1.0).contains(&acceptance_rate),
            "spec acceptance rate must be a fraction, got {acceptance_rate}"
        );
        assert!(
            accepted_len >= 0.0,
            "spec accepted length cannot be negative, got {accepted_len}"
        );
        self.spec_acceptance_rate = acceptance_rate;
        self.spec_accepted_len = accepted_len;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_reads_and_ratios() {
        let s = StepStats {
            n: 100,
            centers: 5,
            large_mode_exact: 3,
            active: 10,
            window: 17,
            mode_updates: 2,
            new_active: 2,
            false_negatives: 0,
            false_positives: 1,
            den_fallbacks: 0,
            keys_scored: 100,
            keys_read: 27,
            bytes_moved: 4_320,
            evictions: 0,
            fanout_width: 1,
        };
        assert_eq!(s.kv_reads(), 27);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert!((s.active_fraction() - 10.0 / 83.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_with_no_active_is_one() {
        let s = StepStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        assert_eq!(s.active_fraction(), 0.0);
    }

    #[test]
    fn summary_averages() {
        let a = StepStats {
            n: 10,
            active: 4,
            new_active: 2,
            window: 2,
            centers: 2,
            ..StepStats::default()
        };
        let b = StepStats {
            n: 20,
            active: 0,
            window: 2,
            centers: 4,
            ..StepStats::default()
        };
        let sum = StatsSummary::from_steps([&a, &b]);
        assert_eq!(sum.steps, 2);
        assert!((sum.mean_centers - 3.0).abs() < 1e-12);
        assert!((sum.mean_active - 2.0).abs() < 1e-12);
        assert!((sum.mean_hit_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let sum = StatsSummary::from_steps(std::iter::empty());
        assert_eq!(sum.steps, 0);
        assert_eq!(sum.mean_active, 0.0);
        assert_eq!(sum.total_den_fallbacks, 0);
    }

    #[test]
    fn summary_does_not_drop_pr1_fields() {
        // Audit: every per-step field with a nonzero value must be visible in
        // the aggregate — den_fallbacks, false_positives and kv_reads used to
        // be silently dropped by `from_steps`.
        let a = StepStats {
            n: 40,
            active: 3,
            window: 5,
            den_fallbacks: 1,
            false_positives: 2,
            false_negatives: 1,
            fanout_width: 4,
            ..StepStats::default()
        };
        let b = StepStats {
            n: 41,
            active: 1,
            window: 5,
            den_fallbacks: 1,
            fanout_width: 2,
            ..StepStats::default()
        };
        let sum = StatsSummary::from_steps([&a, &b]);
        assert_eq!(sum.total_den_fallbacks, 2, "den_fallbacks dropped");
        assert!(
            (sum.mean_false_positives - 1.0).abs() < 1e-12,
            "false_positives dropped"
        );
        assert!((sum.mean_kv_reads - 7.0).abs() < 1e-12, "kv_reads dropped");
        assert!((sum.mean_fanout_width - 3.0).abs() < 1e-12);
    }

    #[test]
    fn algorithmic_view_strips_scheduling_fields_only() {
        let s = StepStats {
            n: 9,
            active: 2,
            window: 3,
            den_fallbacks: 1,
            fanout_width: 8,
            ..StepStats::default()
        };
        let algo = s.algorithmic();
        assert_eq!(algo.fanout_width, 0);
        assert_eq!(
            StepStats {
                fanout_width: 8,
                ..algo
            },
            s,
            "algorithmic() must not touch algorithm fields"
        );
    }

    #[test]
    fn traffic_counters_aggregate_as_means_and_sums() {
        let a = StepStats {
            n: 10,
            keys_scored: 10,
            keys_read: 6,
            bytes_moved: 640,
            evictions: 1,
            ..StepStats::default()
        };
        let b = StepStats {
            n: 11,
            keys_scored: 8,
            keys_read: 8,
            bytes_moved: 512,
            evictions: 2,
            ..StepStats::default()
        };
        let sum = StatsSummary::from_steps([&a, &b]);
        assert!((sum.mean_keys_scored - 9.0).abs() < 1e-12);
        assert!((sum.mean_keys_read - 7.0).abs() < 1e-12);
        assert_eq!(sum.total_bytes_moved, 1_152, "bytes_moved is a sum");
        assert_eq!(sum.total_evictions, 3, "evictions is a sum");
    }

    #[test]
    fn pool_metrics_attach_to_summary() {
        let metrics = crate::pool::PoolMetrics {
            tasks_executed: 10,
            tasks_stolen: 4,
            idle_wakeups: 7,
            scopes_completed: 3,
            park_nanos: 1_500,
        };
        let sum = StatsSummary::from_steps(std::iter::empty()).with_pool_metrics(metrics);
        assert_eq!(sum.pool_tasks_stolen, 4);
        assert_eq!(sum.pool_idle_wakeups, 7);
        assert_eq!(sum.pool_park_nanos, 1_500);
    }

    #[test]
    fn stage_latencies_attach_to_summary() {
        let mut stages = StageBreakdown::new();
        for v in [1_000u64, 3_000, 9_000] {
            stages.record("lad.identify", v);
        }
        let sum = StatsSummary::from_steps(std::iter::empty())
            .with_stage_latencies(stages)
            .with_pool_metrics(crate::pool::PoolMetrics {
                park_nanos: 2_000_000,
                ..crate::pool::PoolMetrics::default()
            });
        let hist = sum.stage_latencies.get("lad.identify").unwrap();
        assert_eq!(hist.count(), 3);
        assert!(hist.p50() >= 1_000 && hist.p99() >= 9_000 / 2);
        let table = sum.stage_table();
        assert!(table.contains("lad.identify"));
        assert!(table.contains("p95"));
        assert!(table.contains("park 2.00ms"));
        // No latencies attached -> no table.
        assert_eq!(StatsSummary::default().stage_table(), "");
    }

    /// Stats-field audit: every field of [`StepStats`] and [`StatsSummary`]
    /// must be explicitly classified below as **algorithmic** (determined by
    /// the LAD algorithm alone — must survive `algorithmic()` untouched and
    /// match bit-exactly across schedules) or **metadata**
    /// (scheduling/timing — must be stripped by `algorithmic()` or live
    /// outside `StepStats` entirely). The exhaustive destructurings have no
    /// `..` rest pattern on purpose: adding a field without extending this
    /// test is a compile error, not a silently unclassified field.
    #[test]
    fn every_stats_field_is_classified() {
        let step = StepStats {
            n: 1,
            centers: 2,
            large_mode_exact: 3,
            active: 4,
            window: 5,
            mode_updates: 6,
            new_active: 7,
            false_negatives: 8,
            false_positives: 9,
            den_fallbacks: 10,
            keys_scored: 12,
            keys_read: 13,
            bytes_moved: 14,
            evictions: 15,
            fanout_width: 11,
        };
        let StepStats {
            // Algorithmic fields: `algorithmic()` must preserve them.
            n,
            centers,
            large_mode_exact,
            active,
            window,
            mode_updates,
            new_active,
            false_negatives,
            false_positives,
            den_fallbacks,
            // Traffic counters: determined by the backend's read policy
            // alone, so they are algorithmic — the differential harness pins
            // them across schedules for every backend.
            keys_scored,
            keys_read,
            bytes_moved,
            evictions,
            // Metadata fields: `algorithmic()` must zero them.
            fanout_width,
        } = step.algorithmic();
        assert_eq!(
            (n, centers, large_mode_exact, active, window),
            (1, 2, 3, 4, 5)
        );
        assert_eq!(
            (
                mode_updates,
                new_active,
                false_negatives,
                false_positives,
                den_fallbacks
            ),
            (6, 7, 8, 9, 10)
        );
        assert_eq!(
            (keys_scored, keys_read, bytes_moved, evictions),
            (12, 13, 14, 15)
        );
        assert_eq!(fanout_width, 0, "metadata must not survive algorithmic()");

        let StatsSummary {
            // Algorithmic aggregates (means/sums of algorithmic StepStats
            // fields): compared across schedules by the differential tests.
            steps: _,
            mean_centers: _,
            mean_large_mode: _,
            mean_active: _,
            mean_mode_updates: _,
            mean_hit_ratio: _,
            mean_active_fraction: _,
            mean_false_negatives: _,
            mean_false_positives: _,
            mean_kv_reads: _,
            total_den_fallbacks: _,
            mean_keys_scored: _,
            mean_keys_read: _,
            total_bytes_moved: _,
            total_evictions: _,
            // Scheduling metadata: injected via with_pool_metrics /
            // with_gemm_metrics or aggregated from StepStats metadata.
            mean_fanout_width: _,
            pool_tasks_stolen: _,
            pool_idle_wakeups: _,
            pool_park_nanos: _,
            gemm_calls: _,
            sync_barriers: _,
            // Timing metadata: injected via with_stage_latencies.
            stage_latencies: _,
            // Speculation metadata: injected via with_spec_metrics. Commits
            // are greedy-verified, so these never affect the token stream.
            spec_acceptance_rate: _,
            spec_accepted_len: _,
        } = StatsSummary::default();
    }

    #[test]
    fn spec_metrics_attach_to_summary() {
        let sum = StatsSummary::from_steps(std::iter::empty()).with_spec_metrics(0.75, 2.5);
        assert_eq!(sum.spec_acceptance_rate, 0.75);
        assert_eq!(sum.spec_accepted_len, 2.5);
        // Attaching speculation metadata must not fabricate steps.
        assert_eq!(sum.steps, 0);
    }

    #[test]
    #[should_panic(expected = "must be a fraction")]
    fn spec_metrics_reject_out_of_range_rate() {
        let _ = StatsSummary::default().with_spec_metrics(1.5, 2.0);
    }

    #[test]
    fn gemm_metrics_attach_to_summary() {
        let metrics = GemmBatchMetrics {
            gemm_calls: 120,
            sync_barriers: 20,
        };
        let sum = StatsSummary::from_steps(std::iter::empty()).with_gemm_metrics(metrics);
        assert_eq!(sum.gemm_calls, 120);
        assert_eq!(sum.sync_barriers, 20);
        // Attaching scheduling metadata must not fabricate steps.
        assert_eq!(sum.steps, 0);
    }
}
