//! # lad-serve — continuous-batching serving engine
//!
//! The paper's GPU baseline (Sec. V-A) assumes a vLLM-style serving loop:
//! paged KV blocks, dynamic admission, preemption. This crate builds that
//! loop on top of the repo's step-synchronous batched GEMM engine
//! ([`lad_model::BatchSession`]):
//!
//! * a **FIFO request queue** with per-request prompt, `max_tokens`,
//!   arrival step and optional latency deadline;
//! * **per-step admission**: requests join mid-flight whenever the paged
//!   [`lad_accel::paged::BlockPool`] can reserve their prompt blocks and a
//!   batch slot is free — the ragged-prompt active-set *shrinking* of
//!   `decode_batch_gemm`, generalised to true dynamic membership with join
//!   *and* leave per global step;
//! * **chunked prefill** interleaved with decode: decode-phase requests
//!   advance one token per engine tick, while prefilling requests may
//!   consume up to `prefill_chunk` prompt tokens per tick through extra
//!   prefill-only sub-steps;
//! * **retirement** on EOS or `max_tokens`, returning exactly the
//!   request's KV blocks to the pool;
//! * **recompute preemption**: on pool exhaustion the youngest active
//!   request is evicted (KV dropped, blocks freed) and re-queued with its
//!   generated prefix folded into the prompt — greedy decoding is
//!   deterministic, so the re-decoded stream continues bit-identically.
//!
//! Every phase is instrumented with `lad-obs` spans (`serve.admit`,
//! `serve.prefill_chunk`, `serve.decode_step`, `serve.retire`,
//! `serve.preempt`), and the engine feeds time-to-first-token and
//! inter-token latencies into [`lad_obs::Histogram`]s, so p50/p95/p99
//! tables fall out of the existing machinery.
//!
//! Correctness is pinned the repo's usual way: `tests/serving.rs` proves
//! every request's token stream under continuous batching — across
//! staggered joins, mid-flight retirement and forced preemption — is
//! bit-identical to its solo [`lad_model::Session`] decode.
//!
//! The deliverable metric is **goodput**: generated tokens per second from
//! requests that met their deadline ([`ServeReport::goodput`]), compared
//! against the naive fixed-batch baseline ([`baseline::serve_fixed_batches`])
//! at an equal batch budget (`BENCH_serve.json`, gated by `bench_check`).

pub mod baseline;
pub mod engine;

pub use engine::Engine;

use lad_model::spec::SpecConfig;
use lad_model::AttentionKind;
use lad_obs::Histogram;
use std::time::{Duration, Instant};

/// One serving request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`RequestOutcome`].
    pub id: u64,
    /// Prompt tokens (must be non-empty).
    pub prompt: Vec<u32>,
    /// Maximum tokens to generate (must be at least 1); generation also
    /// stops at the configured EOS token.
    pub max_tokens: usize,
    /// Engine step at which the request arrives. Arrival is simulated in
    /// deterministic global steps so schedules are reproducible; latency
    /// metrics are wall-clock from the moment the arrival step begins.
    pub arrival_step: usize,
    /// End-to-end latency deadline for goodput accounting (`None` = no
    /// deadline; the request's tokens always count as good).
    pub deadline: Option<Duration>,
    /// Opt-in speculative decoding for this request (`None` = plain
    /// one-token-per-tick decode). Speculative and plain requests coexist
    /// in one tick; speculation commits only greedy-verified tokens, so the
    /// output stream is bit-identical either way.
    pub spec: Option<SpecConfig>,
    /// Attention backend for this request (`None` = the engine's default).
    /// Requests with different backends — exact, LAD, top-k, H2O — coexist
    /// in one engine tick; each sample's heads are built with its own kind
    /// at admission, and preemption replays through the same kind.
    pub backend: Option<AttentionKind>,
}

impl Request {
    /// A request arriving at step 0 with no deadline.
    pub fn new(id: u64, prompt: Vec<u32>, max_tokens: usize) -> Request {
        Request {
            id,
            prompt,
            max_tokens,
            arrival_step: 0,
            deadline: None,
            spec: None,
            backend: None,
        }
    }

    /// Same request arriving at `step`.
    pub fn arriving_at(mut self, step: usize) -> Request {
        self.arrival_step = step;
        self
    }

    /// Same request with an end-to-end deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Same request decoded speculatively: each tick a training-free
    /// drafter proposes up to `cfg.k` tokens, the batch verifies them in
    /// one multi-row forward, and the greedy-matching prefix commits.
    pub fn with_speculation(mut self, cfg: SpecConfig) -> Request {
        self.spec = Some(cfg);
        self
    }

    /// Same request decoded with a specific attention backend instead of
    /// the engine default.
    pub fn with_backend(mut self, kind: AttentionKind) -> Request {
        self.backend = Some(kind);
        self
    }
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch budget: maximum simultaneously active requests (sample slots).
    pub max_active: usize,
    /// Prompt tokens a prefilling request may consume per engine tick (the
    /// first rides the shared sub-step, the rest run as prefill-only
    /// sub-steps). `1` disables chunking — prefill advances in lockstep
    /// with decode, exactly like the fixed-batch engine.
    pub prefill_chunk: usize,
    /// Token that terminates generation early (`None` = decode to
    /// `max_tokens` always). The EOS token is included in the output.
    pub eos: Option<u32>,
    /// Fan-out width handed to the underlying [`lad_model::BatchSession`].
    pub parallelism: usize,
    /// Flight-recorder trip wire: a request preempted **more** than this
    /// many times raises a [`IncidentReason::PreemptionStorm`] incident (a
    /// deadline miss always raises [`IncidentReason::DeadlineMiss`]).
    pub incident_max_preemptions: usize,
    /// Timeline events captured per incident: the last `K` events of the
    /// offending request still resident in the global timeline ring.
    pub incident_last_k: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_active: 8,
            prefill_chunk: 4,
            eos: None,
            parallelism: 1,
            incident_max_preemptions: 4,
            incident_last_k: 32,
        }
    }
}

/// Why the SLO flight recorder captured an [`Incident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentReason {
    /// The request retired after its end-to-end deadline.
    DeadlineMiss,
    /// The request was preempted more than
    /// [`ServeConfig::incident_max_preemptions`] times.
    PreemptionStorm,
}

impl IncidentReason {
    /// Stable snake_case code used in the JSON export.
    pub fn code(&self) -> &'static str {
        match self {
            IncidentReason::DeadlineMiss => "deadline_miss",
            IncidentReason::PreemptionStorm => "preemption_storm",
        }
    }
}

/// One SLO flight-recorder capture: the moment a request missed its
/// deadline or crossed the preemption-storm threshold, the engine snapshots
/// the request's last-K timeline events plus a full metrics snapshot so the
/// violation can be diagnosed offline without re-running the workload.
///
/// Captures are best-effort observability: when the timeline recorder is
/// disabled `events` is empty, and when the metrics registry is disabled the
/// snapshot holds only the builtin drop counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Offending request id.
    pub request: u64,
    /// What tripped the recorder.
    pub reason: IncidentReason,
    /// Engine tick at capture time.
    pub step: usize,
    /// The request's preemption count at capture time.
    pub preemptions: usize,
    /// Last-K timeline events of the request (oldest first), as still
    /// resident in the global ring at capture time.
    pub events: Vec<lad_obs::timeline::TimelineEvent>,
    /// Full metrics snapshot at capture time.
    pub metrics: lad_obs::metrics::MetricsSnapshot,
}

/// Serialises incidents as a JSON document (`{"incidents": [...]}`), each
/// with its reason code, timeline events and metrics snapshot — written
/// alongside the Perfetto trace by `examples/serve_trace.rs`.
pub fn incidents_json(incidents: &[Incident]) -> String {
    let mut out = String::from("{\"incidents\":[");
    for (i, inc) in incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"request\":{},\"reason\":\"{}\",\"step\":{},\"preemptions\":{},\"events\":[",
            inc.request,
            inc.reason.code(),
            inc.step,
            inc.preemptions
        ));
        for (j, ev) in inc.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"request\":{},\"kind\":\"{}\",\"t_ns\":{},\"step\":{},\"value\":{}}}",
                ev.request,
                ev.kind.code(),
                ev.t_ns,
                ev.step,
                ev.value
            ));
        }
        out.push_str("],\"metrics\":");
        let metrics = lad_obs::metrics::json_text(&inc.metrics);
        out.push_str(metrics.trim_end());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Why a request finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The EOS token was generated (it is included in the output).
    Eos,
    /// `max_tokens` tokens were generated.
    MaxTokens,
}

/// The served result of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Caller-chosen id from the [`Request`].
    pub id: u64,
    /// Every generated token, across preemptions, in order.
    pub tokens: Vec<u32>,
    /// Why generation stopped.
    pub finish: FinishReason,
    /// Wall time from arrival (queueing included) to the first token.
    pub ttft: Duration,
    /// Wall time from arrival to retirement.
    pub e2e: Duration,
    /// Times this request was preempted and recomputed.
    pub preemptions: usize,
    /// Whether `e2e` met the request's deadline (`true` without one).
    pub met_deadline: bool,
}

/// Aggregate result of serving a workload to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request outcomes, in retirement order.
    pub outcomes: Vec<RequestOutcome>,
    /// Engine ticks executed (including idle ticks).
    pub steps: usize,
    /// Ticks where the active set was empty (arrival gaps).
    pub idle_steps: usize,
    /// Admissions performed (re-admissions after preemption included).
    pub admissions: usize,
    /// Preemptions performed.
    pub preemptions: usize,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Time-to-first-token distribution (nanoseconds).
    pub ttft: Histogram,
    /// Inter-token latency distribution (nanoseconds).
    pub itl: Histogram,
    /// Tokens committed per speculative verify round (empty when no request
    /// opted into speculation; every sample is >= 1 — the bonus token).
    pub accepted_len: Histogram,
    /// Percentage of draft tokens accepted per verify round that proposed at
    /// least one draft (0–100).
    pub acceptance_pct: Histogram,
    /// Draft tokens proposed across all speculative rounds.
    pub spec_drafted: usize,
    /// Draft tokens accepted across all speculative rounds.
    pub spec_accepted: usize,
    /// SLO flight-recorder captures (deadline misses and preemption
    /// storms), in capture order. Always empty from the fixed-batch
    /// baseline, which has no recorder.
    pub incidents: Vec<Incident>,
}

impl ServeReport {
    /// Total generated tokens.
    pub fn total_tokens(&self) -> usize {
        self.outcomes.iter().map(|o| o.tokens.len()).sum()
    }

    /// Raw tokens per second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.total_tokens() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// **Goodput**: tokens per second counting only requests that met
    /// their deadline — the paper-style "tokens/s within a latency SLO".
    pub fn goodput(&self) -> f64 {
        let good: usize = self
            .outcomes
            .iter()
            .filter(|o| o.met_deadline)
            .map(|o| o.tokens.len())
            .sum();
        good as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Fraction of proposed draft tokens the verifier accepted (0.0 when
    /// nothing was drafted).
    pub fn spec_acceptance_rate(&self) -> f64 {
        if self.spec_drafted == 0 {
            return 0.0;
        }
        self.spec_accepted as f64 / self.spec_drafted as f64
    }

    /// Mean tokens committed per speculative verify round (0.0 when no
    /// request opted into speculation).
    pub fn mean_accepted_len(&self) -> f64 {
        if self.accepted_len.count() == 0 {
            return 0.0;
        }
        self.accepted_len.mean()
    }
}

/// Mutable per-request serving state, shared by the continuous engine and
/// the fixed-batch baseline. Lives in the queue between incarnations.
#[derive(Debug, Clone)]
pub(crate) struct ReqState {
    pub id: u64,
    /// Effective prompt of the next incarnation: the original prompt plus
    /// every token generated before the latest preemption.
    pub prompt: Vec<u32>,
    /// Tokens generated in earlier incarnations (prefix of the output).
    pub done: Vec<u32>,
    /// Tokens still to generate in this incarnation.
    pub remaining: usize,
    pub arrival_step: usize,
    pub deadline: Option<Duration>,
    /// Wall time the arrival step began (latency epoch).
    pub eligible_at: Option<Instant>,
    /// Wall time of the first generated token.
    pub first_token_at: Option<Instant>,
    /// Wall time of the latest generated token (ITL anchor).
    pub last_token_at: Option<Instant>,
    pub preemptions: usize,
    /// Speculative-decoding opt-in, preserved across preemptions (the
    /// drafter itself is rebuilt deterministically from `prompt` on
    /// re-admission — the folded prefix replays the observed stream).
    pub spec: Option<SpecConfig>,
    /// Per-request attention backend, preserved across preemptions so the
    /// recompute incarnation evicts/selects identically to the first.
    pub backend: Option<AttentionKind>,
}

impl ReqState {
    pub(crate) fn from_request(req: Request) -> ReqState {
        assert!(!req.prompt.is_empty(), "serve: empty prompt");
        assert!(req.max_tokens > 0, "serve: max_tokens must be positive");
        ReqState {
            id: req.id,
            prompt: req.prompt,
            done: Vec::new(),
            remaining: req.max_tokens,
            arrival_step: req.arrival_step,
            deadline: req.deadline,
            eligible_at: None,
            first_token_at: None,
            last_token_at: None,
            preemptions: 0,
            spec: req.spec,
            backend: req.backend,
        }
    }

    /// Records one generated token's latency into the histograms.
    pub(crate) fn record_token(&mut self, now: Instant, ttft: &mut Histogram, itl: &mut Histogram) {
        if self.first_token_at.is_none() {
            self.first_token_at = Some(now);
            let eligible = self.eligible_at.expect("token before arrival");
            ttft.record(now.duration_since(eligible).as_nanos() as u64);
        } else if let Some(last) = self.last_token_at {
            itl.record(now.duration_since(last).as_nanos() as u64);
        }
        self.last_token_at = Some(now);
    }

    /// Builds the final outcome at retirement.
    pub(crate) fn into_outcome(
        self,
        generated: Vec<u32>,
        finish: FinishReason,
        now: Instant,
    ) -> RequestOutcome {
        let eligible = self.eligible_at.expect("retired before arrival");
        let first = self.first_token_at.expect("retired without a token");
        let e2e = now.duration_since(eligible);
        let met_deadline = self.deadline.is_none_or(|d| e2e <= d);
        let mut tokens = self.done;
        tokens.extend(generated);
        RequestOutcome {
            id: self.id,
            tokens,
            finish,
            ttft: first.duration_since(eligible),
            e2e,
            preemptions: self.preemptions,
            met_deadline,
        }
    }
}
