//! The naive fixed-batch serving baseline.
//!
//! This is the pre-serving world the continuous engine is measured
//! against: requests are grouped FIFO into batches of `max_active`, a
//! batch only starts once **all** its members have arrived, every member
//! joins at the batch's step 0, and the batch runs to completion — the
//! active set shrinks as members finish (the ragged machinery of
//! [`lad_model::batch::decode_batch_gemm`]) but nothing new is admitted
//! until the slowest member retires. Latency and goodput metrics are
//! recorded identically to [`crate::Engine`], so the two reports compare
//! directly at an equal batch budget.

use crate::{FinishReason, ReqState, Request, ServeConfig, ServeReport};
use lad_model::backend::AttentionKind;
use lad_model::batch::BatchSession;
use lad_model::transformer::{argmax, Model};
use lad_obs::Histogram;
use std::collections::VecDeque;
use std::time::Instant;

/// Starts the latency clock of every queued request whose arrival step has
/// passed — queueing time behind earlier batches counts toward TTFT and
/// the deadline, exactly as in the continuous engine.
fn stamp_arrivals(pending: &mut VecDeque<ReqState>, step: usize, now: Instant) {
    for st in pending.iter_mut() {
        if st.arrival_step <= step && st.eligible_at.is_none() {
            st.eligible_at = Some(now);
        }
    }
}

/// One member of the currently-running fixed batch.
struct Member {
    state: ReqState,
    slot: usize,
    consumed: usize,
    generated: Vec<u32>,
    /// Set at the step the member finished (reason, wall time).
    finished: Option<(FinishReason, Instant)>,
}

/// Serves `requests` (arrival order) in fixed FIFO batches of
/// `cfg.max_active` and returns the same report the continuous engine
/// produces. `cfg.prefill_chunk` is ignored: the naive loop advances every
/// member one token per step, prompt or generated alike. Per-request
/// backend overrides ([`Request::with_backend`]) are rejected: the naive
/// baseline predates per-request backends and decodes every member with
/// `kind`.
///
/// # Panics
///
/// Panics on an empty prompt, `max_tokens == 0`, or out-of-order arrivals.
pub fn serve_fixed_batches(
    model: &Model,
    kind: &AttentionKind,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> ServeReport {
    assert!(cfg.max_active > 0, "serve: max_active must be positive");
    let started = Instant::now();
    let mut states: Vec<ReqState> = Vec::with_capacity(requests.len());
    for req in requests {
        assert!(
            req.backend.is_none(),
            "serve: the fixed-batch baseline does not support per-request backends"
        );
        if let Some(prev) = states.last() {
            assert!(
                req.arrival_step >= prev.arrival_step,
                "serve: requests must be submitted in arrival order"
            );
        }
        states.push(ReqState::from_request(req));
    }

    let mut outcomes = Vec::new();
    let mut ttft = Histogram::new();
    let mut itl = Histogram::new();
    let mut steps = 0usize;
    let mut idle_steps = 0usize;
    let mut admissions = 0usize;

    let mut pending: VecDeque<ReqState> = states.into();
    while !pending.is_empty() {
        stamp_arrivals(&mut pending, steps, Instant::now());
        // The fixed batch forms only once its last member has arrived:
        // earlier members idle in the meantime (that wait is the
        // batch-forming latency continuous batching eliminates).
        let group_len = pending.len().min(cfg.max_active);
        let forms_at = pending
            .iter()
            .take(group_len)
            .map(|st| st.arrival_step)
            .max()
            .expect("group is non-empty");
        while steps < forms_at {
            steps += 1;
            idle_steps += 1;
            stamp_arrivals(&mut pending, steps, Instant::now());
        }
        let mut group: Vec<ReqState> = pending.drain(..group_len).collect();
        let now = Instant::now();
        for st in group.iter_mut() {
            if st.eligible_at.is_none() {
                st.eligible_at = Some(now);
            }
        }

        let mut session = BatchSession::new(model, kind, group.len(), cfg.parallelism);
        admissions += group.len();
        let mut members: Vec<Member> = group
            .into_iter()
            .enumerate()
            .map(|(slot, state)| Member {
                state,
                slot,
                consumed: 0,
                generated: Vec::new(),
                finished: None,
            })
            .collect();

        while members.iter().any(|m| m.finished.is_none()) {
            // Unfinished members feed one token each; finished ones are
            // omitted (the ragged shrink) but their slots stay occupied —
            // nothing new is admitted until the whole batch retires.
            let mut parts: Vec<(usize, u32, usize)> = Vec::new();
            for (i, m) in members.iter().enumerate() {
                if m.finished.is_some() {
                    continue;
                }
                let token = if m.consumed < m.state.prompt.len() {
                    m.state.prompt[m.consumed]
                } else {
                    *m.generated.last().expect("decode feeds last token")
                };
                parts.push((m.slot, token, i));
            }
            let tokens: Vec<(usize, u32)> = parts.iter().map(|&(s, t, _)| (s, t)).collect();
            session.step(&tokens);
            steps += 1;
            let now = Instant::now();
            stamp_arrivals(&mut pending, steps, now);
            for (row, &(_, _, i)) in parts.iter().enumerate() {
                let m = &mut members[i];
                m.consumed += 1;
                if m.consumed < m.state.prompt.len() {
                    continue;
                }
                let next = argmax(session.logits(row));
                m.state.record_token(now, &mut ttft, &mut itl);
                m.generated.push(next);
                if cfg.eos == Some(next) {
                    m.finished = Some((FinishReason::Eos, now));
                } else if m.generated.len() >= m.state.remaining {
                    m.finished = Some((FinishReason::MaxTokens, now));
                }
            }
        }
        for m in members {
            let (finish, at) = m.finished.expect("batch ran to completion");
            outcomes.push(m.state.into_outcome(m.generated, finish, at));
        }
    }

    ServeReport {
        outcomes,
        steps,
        idle_steps,
        admissions,
        preemptions: 0,
        wall: started.elapsed(),
        ttft,
        itl,
        // The fixed-batch baseline never speculates.
        accepted_len: Histogram::new(),
        acceptance_pct: Histogram::new(),
        spec_drafted: 0,
        spec_accepted: 0,
        incidents: Vec::new(),
    }
}
