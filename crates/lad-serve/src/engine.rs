//! The continuous-batching scheduler loop.
//!
//! One [`Engine::tick`] is one global serving step:
//!
//! 1. **decode reservation** — every decode-phase request appends one KV
//!    token to the paged pool; on exhaustion the *youngest* active request
//!    is preempted (recompute style) until the append fits;
//! 2. **admission** — FIFO queue head(s) whose arrival step has come join
//!    while a batch slot and their prompt's blocks are available;
//! 3. **sub-step 0** — all active requests advance one token through the
//!    shared [`BatchSession`] (cross-sample GEMMs);
//! 4. **prefill sub-steps** — requests still consuming their prompt get up
//!    to `prefill_chunk - 1` extra prompt tokens in prefill-only steps;
//! 5. **sampling + retirement** — requests past their prompt sample the
//!    next token; EOS/`max_tokens` retires the request and returns its
//!    blocks.
//!
//! Scheduling never changes results: samples are independent and greedy
//! decoding is deterministic, so whatever the admission pattern, each
//! request's token stream equals its solo [`lad_model::Session`] decode
//! (`tests/serving.rs` pins this, preemption included).
//!
//! Requests may carry their own attention backend
//! ([`Request::with_backend`]): each sample's heads are built with that
//! kind at admission, so exact, LAD, top-k and H2O requests share one
//! tick's GEMMs. After every tick the engine folds attention evictions
//! back into the paged pool — positions that every head of a sample has
//! evicted are marked dead ([`BlockPool::mark_dead`]), and fully-dead
//! blocks return to the free list for new admissions. Preemption still
//! recomputes: the folded prompt replays through the same backend, so
//! eviction decisions (and the resulting stream) are reproduced exactly.

use crate::{FinishReason, Incident, IncidentReason, ReqState, Request, ServeConfig, ServeReport};
use lad_accel::paged::BlockPool;
use lad_model::backend::AttentionKind;
use lad_model::batch::{BatchSession, StepOutcome};
use lad_model::spec::Drafter;
use lad_model::transformer::{argmax, Model};
use lad_obs::metrics::{self, Counter, Gauge, MetricHistogram};
use lad_obs::timeline::{self, TimelineKind};
use lad_obs::Histogram;
use std::collections::VecDeque;
use std::time::Instant;

/// Registry handles the engine records into, resolved once at construction
/// ([`metrics::counter`] & co. are lock + scan — not hot-path operations).
/// All record calls are no-ops while metrics are disabled.
#[derive(Debug)]
struct EngineObs {
    admissions: Counter,
    preemptions: Counter,
    retired: Counter,
    incidents: Counter,
    /// Committed (generated) tokens across all requests.
    tokens: Counter,
    active: Gauge,
    queued: Gauge,
    ttft_ns: MetricHistogram,
    e2e_ns: MetricHistogram,
}

impl EngineObs {
    fn new() -> EngineObs {
        EngineObs {
            admissions: metrics::counter("serve.admissions"),
            preemptions: metrics::counter("serve.preemptions"),
            retired: metrics::counter("serve.retired"),
            incidents: metrics::counter("serve.incidents"),
            tokens: metrics::counter("serve.tokens"),
            active: metrics::gauge("serve.active"),
            queued: metrics::gauge("serve.queued"),
            ttft_ns: metrics::histogram("serve.ttft_ns"),
            e2e_ns: metrics::histogram("serve.e2e_ns"),
        }
    }
}

/// The per-backend traffic counter a request's attention bytes flow into —
/// one counter per [`AttentionKind`] variant, so an exposition splits KV
/// bandwidth by backend class across every engine in the process.
fn traffic_counter(kind: &AttentionKind) -> Counter {
    metrics::counter(match kind {
        AttentionKind::Exact => "serve.bytes_moved.exact",
        AttentionKind::ExactF16 => "serve.bytes_moved.exact_f16",
        AttentionKind::Lad(_) => "serve.bytes_moved.lad",
        AttentionKind::QserveKv4 => "serve.bytes_moved.qserve_kv4",
        AttentionKind::H2o { .. } => "serve.bytes_moved.h2o",
        AttentionKind::StreamingWindow { .. } => "serve.bytes_moved.streaming_window",
        AttentionKind::TopK { .. } => "serve.bytes_moved.topk",
        AttentionKind::H2O { .. } => "serve.bytes_moved.h2o_budget",
    })
}

/// One admitted, currently-decoding request.
#[derive(Debug)]
struct Active {
    state: ReqState,
    /// Sample slot in the [`BatchSession`].
    slot: usize,
    /// Sequence id in the [`BlockPool`].
    pool_id: usize,
    /// Tokens fed to the session in this incarnation (prompt included).
    consumed: usize,
    /// Tokens generated in this incarnation.
    generated: Vec<u32>,
    /// Draft-token proposer, present iff the request opted into
    /// speculation. Seeded from the incarnation's prompt at admission and
    /// fed every committed token, so a preempted request rebuilds the exact
    /// same table from its folded prefix.
    drafter: Option<Drafter>,
    /// Draft KV rows the pool granted for this tick's verify round
    /// (reserved optimistically in [`Engine::reserve_decode_blocks`], the
    /// rejected tail returned via [`BlockPool::truncate`] after the walk).
    granted: usize,
    /// Per-backend `serve.bytes_moved.*` counter this request's attention
    /// traffic accumulates into (resolved once at admission).
    traffic: Counter,
}

impl Active {
    fn in_prefill(&self) -> bool {
        self.consumed < self.state.prompt.len()
    }

    /// The token this request feeds on the next shared sub-step.
    fn next_token(&self) -> u32 {
        if self.in_prefill() {
            self.state.prompt[self.consumed]
        } else {
            *self
                .generated
                .last()
                .expect("decode phase feeds last token")
        }
    }
}

/// Continuous-batching serving engine over one model.
#[derive(Debug)]
pub struct Engine<'m> {
    cfg: ServeConfig,
    session: BatchSession<'m>,
    pool: BlockPool,
    /// Default attention backend for requests without an explicit one.
    kind: AttentionKind,
    /// Waiting requests, FIFO by arrival (preempted requests re-enter at
    /// the front, which preserves arrival order — they arrived before
    /// everything still queued).
    queue: VecDeque<ReqState>,
    /// Admitted requests in admission order (oldest first; the preemption
    /// victim is always the last element).
    active: Vec<Active>,
    step: usize,
    // Report accumulators.
    outcomes: Vec<crate::RequestOutcome>,
    ttft: Histogram,
    itl: Histogram,
    idle_steps: usize,
    admissions: usize,
    preemptions: usize,
    accepted_len: Histogram,
    acceptance_pct: Histogram,
    spec_drafted: usize,
    spec_accepted: usize,
    incidents: Vec<Incident>,
    obs: EngineObs,
}

impl<'m> Engine<'m> {
    /// Builds an engine serving `model` with `kind` attention heads from
    /// the KV capacity of `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_active == 0`, `cfg.prefill_chunk == 0` or
    /// `cfg.parallelism == 0`.
    pub fn new(model: &'m Model, kind: &AttentionKind, pool: BlockPool, cfg: ServeConfig) -> Self {
        assert!(cfg.max_active > 0, "serve: max_active must be positive");
        assert!(
            cfg.prefill_chunk > 0,
            "serve: prefill_chunk must be positive"
        );
        let session = BatchSession::dynamic(model, kind, cfg.parallelism);
        Engine {
            cfg,
            session,
            pool,
            kind: kind.clone(),
            queue: VecDeque::new(),
            active: Vec::new(),
            step: 0,
            outcomes: Vec::new(),
            ttft: Histogram::new(),
            itl: Histogram::new(),
            idle_steps: 0,
            admissions: 0,
            preemptions: 0,
            accepted_len: Histogram::new(),
            acceptance_pct: Histogram::new(),
            spec_drafted: 0,
            spec_accepted: 0,
            incidents: Vec::new(),
            obs: EngineObs::new(),
        }
    }

    /// Enqueues a request. Requests must be submitted in arrival order.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt, `max_tokens == 0`, out-of-order arrival
    /// steps, or a request that could never fit the pool even alone
    /// (`blocks_for(prompt + max_tokens) > total_blocks` — such a request
    /// would preempt itself forever).
    pub fn submit(&mut self, req: Request) {
        assert!(
            BlockPool::blocks_for(req.prompt.len() + req.max_tokens) <= self.pool.total_blocks(),
            "serve: request {} can never fit the pool",
            req.id
        );
        if let Some(back) = self.queue.back() {
            assert!(
                req.arrival_step >= back.arrival_step,
                "serve: requests must be submitted in arrival order"
            );
        }
        self.queue.push_back(ReqState::from_request(req));
    }

    /// Requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently active in the batch.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Global steps executed so far.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Runs the scheduler loop until every submitted request has retired,
    /// and returns the drained report.
    pub fn run(&mut self) -> ServeReport {
        let started = Instant::now();
        while !self.queue.is_empty() || !self.active.is_empty() {
            self.tick();
        }
        ServeReport {
            outcomes: std::mem::take(&mut self.outcomes),
            steps: self.step,
            idle_steps: self.idle_steps,
            admissions: self.admissions,
            preemptions: self.preemptions,
            wall: started.elapsed(),
            ttft: std::mem::replace(&mut self.ttft, Histogram::new()),
            itl: std::mem::replace(&mut self.itl, Histogram::new()),
            accepted_len: std::mem::replace(&mut self.accepted_len, Histogram::new()),
            acceptance_pct: std::mem::replace(&mut self.acceptance_pct, Histogram::new()),
            spec_drafted: std::mem::take(&mut self.spec_drafted),
            spec_accepted: std::mem::take(&mut self.spec_accepted),
            incidents: std::mem::take(&mut self.incidents),
        }
    }

    /// Executes one global serving step.
    pub fn tick(&mut self) {
        let _tick = lad_obs::span("serve.tick");
        let now = Instant::now();
        // Requests whose arrival step has come start their latency clock
        // now — queueing time counts toward TTFT.
        for q in self.queue.iter_mut() {
            if q.arrival_step <= self.step && q.eligible_at.is_none() {
                q.eligible_at = Some(now);
            }
        }

        self.reserve_decode_blocks();
        self.admit();
        self.obs.active.set(self.active.len() as i64);
        self.obs.queued.set(self.queue.len() as i64);

        if self.active.is_empty() {
            // The active set drained while later arrivals are still in the
            // future: the documented BatchSession idle no-op.
            let _idle = lad_obs::span("serve.idle");
            let outcome = self.session.step(&[]);
            debug_assert_eq!(outcome, StepOutcome::Idle);
            self.idle_steps += 1;
            self.step += 1;
            return;
        }

        // Sub-step 0: everyone advances one token.
        self.run_substep(true);
        // Extra prefill-only sub-steps (chunked prefill).
        for _ in 1..self.cfg.prefill_chunk {
            if !self.active.iter().any(Active::in_prefill) {
                break;
            }
            self.run_substep(false);
        }
        self.reclaim_evicted();
        self.obs.active.set(self.active.len() as i64);
        self.obs.queued.set(self.queue.len() as i64);
        self.step += 1;
    }

    /// Folds attention evictions into the paged accounting: a position that
    /// every (layer, head) state of a sample has evicted (H2O budget /
    /// streaming-window backends) is marked dead in the pool, and a block
    /// whose tokens are all dead returns to the free list. Runs after the
    /// tick's sub-steps — past any speculative rollback — so only decisions
    /// that survived verification are committed ([`BlockPool::mark_dead`] is
    /// irreversible). Exact, top-k and LAD heads never evict, so for those
    /// requests this is a no-op.
    fn reclaim_evicted(&mut self) {
        let _span = lad_obs::span("serve.reclaim");
        let step = self.step as u64;
        for a in &self.active {
            let mut freed_blocks = 0u64;
            for pos in self.session.dead_positions(a.slot) {
                if self.pool.mark_dead(a.pool_id, pos) {
                    freed_blocks += 1;
                }
            }
            if freed_blocks > 0 {
                timeline::record(
                    a.state.id,
                    TimelineKind::EvictionReclaim,
                    step,
                    freed_blocks,
                );
            }
        }
    }

    /// Reserves this tick's KV token for every decode-phase request,
    /// preempting the youngest active request on pool exhaustion.
    /// (Prefilling requests reserved their prompt blocks at admission.)
    ///
    /// Speculative requests additionally reserve up to `k` draft rows
    /// *optimistically*: extra appends that the pool refuses simply shrink
    /// this tick's draft budget to whatever was granted (never preempting
    /// anyone), so under pressure speculation degrades to plain decode.
    fn reserve_decode_blocks(&mut self) {
        let _span = lad_obs::span("serve.reserve");
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].in_prefill() {
                self.active[i].granted = 0;
                i += 1;
                continue;
            }
            loop {
                if self.pool.append_token(self.active[i].pool_id) {
                    self.active[i].granted = 0;
                    i += 1;
                    break;
                }
                let youngest = self.active.len() - 1;
                let self_preempted = youngest == i;
                self.preempt(youngest);
                if self_preempted {
                    break; // `i` now indexes the next request (or the end)
                }
            }
        }
        // Second pass, after every mandatory row is safe: optimistic draft
        // rows. These never contend with mandatory reservations and never
        // preempt — a refused append just caps the budget.
        for a in self.active.iter_mut() {
            let Some(spec) = &a.state.spec else { continue };
            if a.in_prefill() {
                continue;
            }
            // Never draft past the request's budget: the walk commits every
            // matched token, so proposing more than `remaining - 1` could
            // overshoot max_tokens.
            let left = a.state.remaining - a.generated.len();
            let want = spec.k.min(left - 1);
            while a.granted < want && self.pool.append_token(a.pool_id) {
                a.granted += 1;
            }
        }
    }

    /// Evicts active request `idx` (recompute preemption): KV dropped,
    /// blocks freed, generated prefix folded into the prompt, request
    /// re-queued at the front (it arrived before everything still queued).
    fn preempt(&mut self, idx: usize) {
        let _span = lad_obs::span("serve.preempt");
        let mut a = self.active.remove(idx);
        self.session.remove_sample(a.slot);
        self.pool.release(a.pool_id);
        let generated = std::mem::take(&mut a.generated);
        let mut st = a.state;
        st.remaining -= generated.len();
        debug_assert!(st.remaining > 0, "finished request was preempted");
        st.prompt.extend_from_slice(&generated);
        st.done.extend(generated);
        st.preemptions += 1;
        self.preemptions += 1;
        self.obs.preemptions.inc(1);
        timeline::record(
            st.id,
            TimelineKind::Preempt,
            self.step as u64,
            st.preemptions as u64,
        );
        // Preemption storm: trips exactly once, the first time the count
        // crosses the configured ceiling.
        if st.preemptions == self.cfg.incident_max_preemptions + 1 {
            self.record_incident(st.id, IncidentReason::PreemptionStorm, st.preemptions);
        }
        self.queue.push_front(st);
    }

    /// Flight recorder: snapshots the request's last-K timeline events and
    /// the full metrics registry into an [`Incident`] on the report.
    fn record_incident(&mut self, request: u64, reason: IncidentReason, preemptions: usize) {
        self.obs.incidents.inc(1);
        self.incidents.push(Incident {
            request,
            reason,
            step: self.step,
            preemptions,
            events: timeline::tail_for(request, self.cfg.incident_last_k),
            metrics: metrics::snapshot(),
        });
    }

    /// Admits FIFO queue heads while a slot and their prompt blocks are
    /// available. Admission is strictly in arrival order: a blocked head
    /// blocks everything behind it (no out-of-order admission).
    fn admit(&mut self) {
        let _span = lad_obs::span("serve.admit");
        while self.active.len() < self.cfg.max_active {
            let Some(front) = self.queue.front() else {
                break;
            };
            if front.arrival_step > self.step {
                break;
            }
            let Some(pool_id) = self.pool.admit(front.prompt.len()) else {
                break;
            };
            let state = self.queue.pop_front().expect("front checked above");
            let kind = state.backend.as_ref().unwrap_or(&self.kind).clone();
            let slot = self.session.add_sample_with_kind(&kind);
            self.admissions += 1;
            self.obs.admissions.inc(1);
            timeline::record(
                state.id,
                TimelineKind::Admit,
                self.step as u64,
                state.prompt.len() as u64,
            );
            // The drafter observes the incarnation's prompt up front. After
            // a preemption that prompt includes every token generated so
            // far, so the rebuilt table equals the uninterrupted one.
            let drafter = state.spec.as_ref().map(|spec| {
                let mut d = Drafter::new(spec.policy.clone());
                d.observe_all(&state.prompt);
                d
            });
            self.active.push(Active {
                state,
                slot,
                pool_id,
                consumed: 0,
                generated: Vec::new(),
                drafter,
                granted: 0,
                traffic: traffic_counter(&kind),
            });
        }
    }

    /// Runs one [`BatchSession::step_runs`] over the active requests
    /// (`include_decode = false` restricts it to prefilling requests),
    /// then samples next tokens and retires finished requests.
    ///
    /// A prefilling or plain decode request contributes a one-token run — a
    /// row of the cross-sample GEMM, exactly as before. A speculative
    /// decode request contributes a `1 + d`-row run (its pending token plus
    /// `d` drafted tokens); after the step the acceptance walk commits the
    /// greedy-matching prefix, rolls the session back to the kept rows and
    /// returns the rejected rows' KV blocks to the pool. Every committed
    /// token is the argmax of logits conditioned only on committed rows, so
    /// the stream is bit-identical to the request's plain decode.
    fn run_substep(&mut self, include_decode: bool) {
        // The sub-step span covers run building, the cross-sample GEMMs and
        // the sampling/retirement walk, so `serve.tick` time decomposes
        // almost entirely into its direct children (the coverage invariant
        // `examples/serve_trace.rs` asserts).
        let any_decode = include_decode && self.active.iter().any(|a| !a.in_prefill());
        let _outer = if any_decode {
            lad_obs::span("serve.decode_step")
        } else {
            lad_obs::span("serve.prefill_chunk")
        };
        let step_u64 = self.step as u64;
        // (slot, run tokens, active index), sorted by slot as the session
        // requires strictly increasing sample ids.
        let mut parts: Vec<(usize, Vec<u32>, usize)> = Vec::new();
        let mut any_spec = false;
        for (i, a) in self.active.iter().enumerate() {
            if a.in_prefill() {
                parts.push((a.slot, vec![a.next_token()], i));
            } else if include_decode {
                let pending = a.next_token();
                let mut run = vec![pending];
                if let (Some(drafter), true) = (&a.drafter, a.granted > 0) {
                    let _span = lad_obs::span("spec.draft");
                    let mut drafts = drafter.draft(a.granted);
                    drafts.truncate(a.granted);
                    if !drafts.is_empty() {
                        timeline::record(
                            a.state.id,
                            TimelineKind::SpecDraft,
                            step_u64,
                            drafts.len() as u64,
                        );
                    }
                    run.extend_from_slice(&drafts);
                }
                any_spec |= run.len() > 1;
                parts.push((a.slot, run, i));
            }
        }
        if parts.is_empty() {
            return;
        }
        parts.sort_unstable_by_key(|&(slot, _, _)| slot);
        let runs: Vec<(usize, &[u32])> = parts.iter().map(|(s, r, _)| (*s, r.as_slice())).collect();
        {
            let _verify = any_spec.then(|| lad_obs::span("spec.verify"));
            self.session.step_runs(&runs);
        }
        // Per-backend KV traffic: every head of every stepped sample
        // reports bytes_moved for this sub-step; fold each sample's total
        // into its backend's counter (gated here to skip the stats walk
        // entirely while metrics are off).
        if metrics::metrics_enabled() {
            for (slot, _, i) in &parts {
                let bytes: usize = self
                    .session
                    .last_stats(*slot)
                    .iter()
                    .map(|s| s.bytes_moved)
                    .sum();
                self.active[*i].traffic.inc(bytes as u64);
            }
        }

        let now = Instant::now();
        let mut retired: Vec<(usize, FinishReason)> = Vec::new();
        // Logits rows are run-major in `runs` order: track each run's base.
        let mut base = 0usize;
        for (_, run, i) in &parts {
            let row_base = base;
            base += run.len();
            let i = *i;
            let a = &mut self.active[i];
            let was_prefill = a.in_prefill();
            a.consumed += run.len();
            if was_prefill {
                // The run consumed prompt tokens (a crossing sample falls
                // through and also decodes this sub-step).
                timeline::record(
                    a.state.id,
                    TimelineKind::PrefillChunk,
                    step_u64,
                    run.len() as u64,
                );
                if a.in_prefill() {
                    continue;
                }
            }
            if a.state.spec.is_none() {
                // Plain request: the single row yields its next token.
                let next = argmax(self.session.logits(row_base));
                a.state.record_token(now, &mut self.ttft, &mut self.itl);
                a.generated.push(next);
                timeline::record(a.state.id, TimelineKind::DecodeTick, step_u64, 1);
                self.obs.tokens.inc(1);
                if self.cfg.eos == Some(next) {
                    retired.push((i, FinishReason::Eos));
                } else if a.generated.len() >= a.state.remaining {
                    retired.push((i, FinishReason::MaxTokens));
                }
                continue;
            }

            // Speculative acceptance walk. Row `row_base + j` holds the
            // logits after the committed prefix plus `j` matched drafts, so
            // its argmax is the exact greedy next token at that point.
            let drafts = &run[1..];
            let was_prefill_tail = a.consumed == a.state.prompt.len();
            let mut matched = 0usize;
            let mut committed = 0usize;
            let mut finish = None;
            loop {
                let next = argmax(self.session.logits(row_base + matched));
                a.state.record_token(now, &mut self.ttft, &mut self.itl);
                a.generated.push(next);
                if let Some(d) = a.drafter.as_mut() {
                    d.observe(next);
                }
                committed += 1;
                if self.cfg.eos == Some(next) {
                    finish = Some(FinishReason::Eos);
                    break;
                }
                if a.generated.len() >= a.state.remaining {
                    finish = Some(FinishReason::MaxTokens);
                    break;
                }
                if matched < drafts.len() && drafts[matched] == next {
                    matched += 1;
                } else {
                    break;
                }
            }
            // A spec request that just crossed prefill→decode fed its last
            // prompt token as a one-row run with no reservation: not a
            // verify round, so it is kept out of the acceptance accounting.
            if !was_prefill_tail {
                self.spec_drafted += drafts.len();
                self.spec_accepted += matched;
                self.accepted_len.record(committed as u64);
                if !drafts.is_empty() {
                    self.acceptance_pct
                        .record((100 * matched / drafts.len()) as u64);
                }
            }
            if !drafts.is_empty() {
                timeline::record(
                    a.state.id,
                    TimelineKind::SpecVerify,
                    step_u64,
                    matched as u64,
                );
            }
            timeline::record(
                a.state.id,
                TimelineKind::DecodeTick,
                step_u64,
                committed as u64,
            );
            self.obs.tokens.inc(committed as u64);
            if let Some(finish) = finish {
                // Retirement discards the whole sample; no rollback needed.
                retired.push((i, finish));
                continue;
            }
            if run.len() > 1 {
                let _span = lad_obs::span("spec.rollback");
                timeline::record(
                    a.state.id,
                    TimelineKind::SpecRollback,
                    step_u64,
                    (run.len() - committed) as u64,
                );
                self.session.rollback_sample(a.slot, committed);
            }
            // Return the rejected rows' blocks: the pool currently holds
            // `1 + granted` rows reserved this tick, only `committed` stay.
            let current = self
                .pool
                .sequence_tokens(a.pool_id)
                .expect("active request has a live pool sequence");
            let target = current - (1 + a.granted) + committed;
            if target < current {
                self.pool.truncate(a.pool_id, target);
            }
            a.granted = 0;
        }
        // Retire in descending active-index order so removals do not shift
        // the remaining indices (parts are in slot order, not index order).
        retired.sort_unstable_by_key(|&(i, _)| std::cmp::Reverse(i));
        for &(i, finish) in &retired {
            let _span = lad_obs::span("serve.retire");
            let a = self.active.remove(i);
            self.session.remove_sample(a.slot);
            self.pool.release(a.pool_id);
            let total_tokens = a.state.done.len() + a.generated.len();
            timeline::record(
                a.state.id,
                TimelineKind::Retire,
                step_u64,
                total_tokens as u64,
            );
            self.obs.retired.inc(1);
            let outcome = a.state.into_outcome(a.generated, finish, now);
            self.obs.ttft_ns.record(outcome.ttft.as_nanos() as u64);
            self.obs.e2e_ns.record(outcome.e2e.as_nanos() as u64);
            if !outcome.met_deadline {
                self.record_incident(
                    outcome.id,
                    IncidentReason::DeadlineMiss,
                    outcome.preemptions,
                );
            }
            self.outcomes.push(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::serve_fixed_batches;
    use lad_model::config::ModelConfig;
    use lad_model::transformer::Session;
    use std::time::Duration;

    fn tiny_model() -> Model {
        Model::random(ModelConfig::tiny("serve", 2, 32, 2), 71)
    }

    /// Blocks→bytes for the tiny model above (2 layers × 32 hidden).
    fn budget(blocks: usize) -> usize {
        let cfg = ModelConfig::tiny("serve", 2, 32, 2);
        cfg.layers * 2 * cfg.hidden * 2 * lad_accel::paged::BLOCK_TOKENS * blocks
    }

    fn prompt(seed: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| ((i as u64 * 37 + seed * 13) % 256) as u32)
            .collect()
    }

    /// Solo greedy reference under `kind`, truncated after the first EOS
    /// (inclusive) the way the engine retires.
    fn solo_kind(
        model: &Model,
        kind: &AttentionKind,
        prompt: &[u32],
        max_tokens: usize,
        eos: Option<u32>,
    ) -> Vec<u32> {
        let mut session = Session::new(model, kind);
        let full = session.generate_greedy(prompt, max_tokens);
        match eos.and_then(|e| full.iter().position(|&t| t == e)) {
            Some(at) => full[..=at].to_vec(),
            None => full,
        }
    }

    /// Exact-attention solo reference.
    fn solo(model: &Model, prompt: &[u32], max_tokens: usize, eos: Option<u32>) -> Vec<u32> {
        solo_kind(model, &AttentionKind::Exact, prompt, max_tokens, eos)
    }

    #[test]
    fn continuous_streams_match_solo_sessions() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 3,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let specs = [(0u64, 9usize, 12usize, 0usize), (1, 6, 7, 0), (2, 11, 9, 4)];
        for &(id, plen, max, at) in &specs {
            engine.submit(Request::new(id, prompt(id, plen), max).arriving_at(at));
        }
        let report = engine.run();

        assert_eq!(report.outcomes.len(), specs.len());
        assert_eq!(report.admissions, specs.len());
        assert_eq!(report.preemptions, 0);
        for &(id, plen, max, _) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo(&model, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
        let total: usize = specs.iter().map(|&(_, _, max, _)| max).sum();
        assert_eq!(report.total_tokens(), total);
        assert_eq!(report.ttft.count(), specs.len() as u64);
        assert_eq!(report.itl.count(), (total - specs.len()) as u64);
    }

    #[test]
    fn forced_preemption_recovers_bit_identical_streams() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 1,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        // Three blocks total; two requests each peaking at two blocks, so
        // the pool must run dry and evict the youngest mid-decode.
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(3));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let specs = [(0u64, 8usize, 24usize), (1, 8, 24)];
        for &(id, plen, max) in &specs {
            engine.submit(Request::new(id, prompt(id, plen), max));
        }
        let report = engine.run();

        assert!(
            report.preemptions >= 1,
            "pool pressure must force a preemption"
        );
        let preempted: usize = report.outcomes.iter().map(|o| o.preemptions).sum();
        assert_eq!(preempted, report.preemptions);
        for &(id, plen, max) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo(&model, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
    }

    #[test]
    fn eos_retires_early_and_is_included() {
        let model = tiny_model();
        let p = prompt(3, 10);
        // Pick the third solo token as EOS so the engine must stop there.
        let reference = solo(&model, &p, 12, None);
        let eos = reference[2];
        let expect = solo(&model, &p, 12, Some(eos));
        assert!(expect.len() < 12, "chosen EOS must truncate");

        let cfg = ServeConfig {
            eos: Some(eos),
            ..ServeConfig::default()
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        engine.submit(Request::new(7, p, 12));
        let report = engine.run();

        let out = &report.outcomes[0];
        assert_eq!(out.finish, FinishReason::Eos);
        assert_eq!(out.tokens, expect);
        assert_eq!(*out.tokens.last().unwrap(), eos);
    }

    #[test]
    fn idle_ticks_bridge_arrival_gaps() {
        let model = tiny_model();
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, ServeConfig::default());
        engine.submit(Request::new(0, prompt(0, 4), 3).arriving_at(5));
        let report = engine.run();
        assert_eq!(report.idle_steps, 5);
        assert_eq!(report.outcomes[0].tokens.len(), 3);
    }

    #[test]
    fn oversized_request_is_rejected_at_submit() {
        let model = tiny_model();
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(2));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, ServeConfig::default());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.submit(Request::new(0, prompt(0, 8), 64));
        }));
        assert!(
            res.is_err(),
            "a request that can never fit must panic at submit"
        );
    }

    #[test]
    fn fixed_batch_baseline_matches_solo_sessions() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 1,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        let specs = [(0u64, 9usize, 12usize, 0usize), (1, 6, 7, 2), (2, 11, 9, 2)];
        let requests: Vec<Request> = specs
            .iter()
            .map(|&(id, plen, max, at)| Request::new(id, prompt(id, plen), max).arriving_at(at))
            .collect();
        let report = serve_fixed_batches(&model, &AttentionKind::Exact, &cfg, requests);

        assert_eq!(report.outcomes.len(), specs.len());
        assert_eq!(report.preemptions, 0);
        for &(id, plen, max, _) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo(&model, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
    }

    #[test]
    fn speculative_and_plain_requests_coexist_and_match_solo() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 3,
            prefill_chunk: 2,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        // Requests 0 and 2 speculate (different policies), request 1 stays
        // plain; all three share ticks.
        engine.submit(
            Request::new(0, prompt(0, 9), 24)
                .with_speculation(lad_model::spec::SpecConfig::recency(4)),
        );
        engine.submit(Request::new(1, prompt(1, 6), 15));
        engine.submit(
            Request::new(2, prompt(2, 11), 20)
                .with_speculation(lad_model::spec::SpecConfig::ngram(2))
                .arriving_at(3),
        );
        let report = engine.run();

        assert_eq!(report.outcomes.len(), 3);
        for &(id, plen, max) in &[(0u64, 9usize, 24usize), (1, 6, 15), (2, 11, 20)] {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo(&model, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
        // Speculation actually ran: rounds were recorded and every round
        // committed at least the bonus token.
        assert!(report.accepted_len.count() > 0, "no verify rounds recorded");
        assert!(report.mean_accepted_len() >= 1.0);
        assert!(report.spec_accepted <= report.spec_drafted);
        // The tiny model's greedy stream cycles, so the recency drafter must
        // land at least one accepted draft over 40+ generated tokens.
        assert!(
            report.spec_accepted > 0,
            "drafter never predicted the cycle"
        );
    }

    #[test]
    fn speculative_request_survives_forced_preemption() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 1,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        // Three blocks, two speculating requests that must each cross the
        // 16-token block boundary a few tokens into decode: whoever crosses
        // second finds the pool dry mid-speculation and is preempted.
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(3));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let spec = lad_model::spec::SpecConfig::recency(4);
        let specs = [(0u64, 12usize, 24usize), (1, 12, 24)];
        for &(id, plen, max) in &specs {
            engine.submit(Request::new(id, prompt(id, plen), max).with_speculation(spec.clone()));
        }
        let report = engine.run();

        assert!(
            report.preemptions >= 1,
            "pool pressure must force a preemption"
        );
        for &(id, plen, max) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo(&model, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
    }

    #[test]
    fn speculative_eos_stops_exactly_where_solo_does() {
        let model = tiny_model();
        let p = prompt(3, 10);
        let reference = solo(&model, &p, 12, None);
        let eos = reference[2];
        let expect = solo(&model, &p, 12, Some(eos));
        assert!(expect.len() < 12, "chosen EOS must truncate");

        let cfg = ServeConfig {
            eos: Some(eos),
            ..ServeConfig::default()
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        engine.submit(
            Request::new(7, p, 12).with_speculation(lad_model::spec::SpecConfig::recency(4)),
        );
        let report = engine.run();

        let out = &report.outcomes[0];
        assert_eq!(out.finish, FinishReason::Eos);
        assert_eq!(out.tokens, expect, "tokens past EOS must be discarded");
    }

    #[test]
    fn mixed_backend_requests_match_their_solo_streams() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 4,
            prefill_chunk: 2,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        // Engine default is exact; the other three override per request, so
        // all four backends share the same engine ticks.
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let kinds: [(u64, Option<AttentionKind>); 4] = [
            (0, None),
            (
                1,
                Some(AttentionKind::Lad(lad_core::decoder::LadConfig::default())),
            ),
            (2, Some(AttentionKind::topk(6))),
            (3, Some(AttentionKind::h2o_budget(12, 4))),
        ];
        for (id, kind) in &kinds {
            let mut req =
                Request::new(*id, prompt(*id, 8 + *id as usize), 20).arriving_at(*id as usize);
            if let Some(kind) = kind {
                req = req.with_backend(kind.clone());
            }
            engine.submit(req);
        }
        let report = engine.run();

        assert_eq!(report.outcomes.len(), kinds.len());
        assert_eq!(report.preemptions, 0);
        let mut streams = Vec::new();
        for (id, kind) in &kinds {
            let got = report
                .outcomes
                .iter()
                .find(|o| o.id == *id)
                .expect("request retired")
                .tokens
                .clone();
            let kind = kind.clone().unwrap_or(AttentionKind::Exact);
            let want = solo_kind(&model, &kind, &prompt(*id, 8 + *id as usize), 20, None);
            assert_eq!(got, want, "request {id} under {kind:?}");
            streams.push(got);
        }
        // The backends genuinely disagree on this model (otherwise the test
        // would pass with the per-request kind silently ignored).
        assert!(
            streams.iter().any(|s| s != &streams[0]),
            "all backends produced one stream; per-request kinds untested"
        );
    }

    #[test]
    fn h2o_request_survives_forced_preemption() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 1,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        let kind = AttentionKind::h2o_budget(10, 4);
        // Same three-block squeeze as the exact-attention preemption test:
        // the H2O victim's KV (eviction state included) is dropped and must
        // be reproduced by replaying the folded prompt through H2O again.
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(3));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let specs = [(0u64, 8usize, 24usize), (1, 8, 24)];
        for &(id, plen, max) in &specs {
            engine.submit(Request::new(id, prompt(id, plen), max).with_backend(kind.clone()));
        }
        let report = engine.run();

        assert!(
            report.preemptions >= 1,
            "pool pressure must force a preemption"
        );
        for &(id, plen, max) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo_kind(&model, &kind, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
    }

    #[test]
    fn eviction_returns_blocks_to_the_pool() {
        let model = tiny_model();
        let cfg = ServeConfig {
            max_active: 2,
            prefill_chunk: 4,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        };
        // Streaming-window requests keep only 4 sinks + the 8 newest
        // positions alive, so interior blocks go fully dead as decode rolls
        // past them. Each request spans 88 tokens = 6 blocks; two of them
        // need 12 blocks at peak without eviction feedback, which would
        // force a preemption in this 9-block pool. Reclaimed dead blocks
        // keep each request's footprint at ~3 blocks, so both fit.
        let kind = AttentionKind::StreamingWindow {
            sinks: 4,
            window: 8,
        };
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(9));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
        let specs = [(0u64, 8usize, 80usize), (1, 8, 80)];
        for &(id, plen, max) in &specs {
            engine.submit(Request::new(id, prompt(id, plen), max).with_backend(kind.clone()));
        }
        let report = engine.run();

        assert_eq!(
            report.preemptions, 0,
            "reclaimed blocks must absorb the concurrent overhang"
        );
        for &(id, plen, max) in &specs {
            let got = &report
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("request retired")
                .tokens;
            assert_eq!(
                got,
                &solo_kind(&model, &kind, &prompt(id, plen), max, None),
                "request {id}"
            );
        }
    }

    #[test]
    fn goodput_counts_only_deadline_met_requests() {
        let model = tiny_model();
        let pool = BlockPool::new(&ModelConfig::tiny("serve", 2, 32, 2), budget(64));
        let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, ServeConfig::default());
        engine.submit(Request::new(0, prompt(0, 4), 5));
        engine.submit(Request::new(1, prompt(1, 4), 5).with_deadline(Duration::ZERO));
        let report = engine.run();

        let missed = report.outcomes.iter().find(|o| o.id == 1).unwrap();
        assert!(!missed.met_deadline, "a zero deadline cannot be met");
        assert!(report.goodput() < report.throughput());
        let good: usize = report
            .outcomes
            .iter()
            .filter(|o| o.met_deadline)
            .map(|o| o.tokens.len())
            .sum();
        assert_eq!(good, 5);
    }
}
