#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (release build + tests).
# Mirrors .github/workflows/ci.yml so a green run here means a green PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test --workspace --release -q

echo "== serving differential grid (continuous batching vs solo decode)"
cargo test --release --test serving -q

echo "== benches compile (cargo bench --no-run, incl. spec_decode)"
cargo bench --workspace --no-run

echo "== observability smoke (trace_decode example; validates trace + JSONL)"
cargo run --release --example trace_decode

echo "== serving observability smoke (serve_trace example; span coverage,"
echo "   request timelines, metrics exposition, flight-recorder incident)"
cargo run --release --example serve_trace

echo "== bench regression gate (gemm/serve/spec/kernel/backend-zoo/obs ratios vs"
echo "   committed BENCH_*.json floors, incl. the backend_quality quality-per-byte"
echo "   smoke and the enabled-recorder overhead ceiling;"
echo "   also fails on any committed BENCH_*.json bench_check has no gate for)"
cargo run --release -p lad-bench --bin bench_check

echo "== slow tests (long-stream + differential grid, warnings are errors)"
RUSTFLAGS="-D warnings" cargo test --workspace --release -q -- --ignored

echo "CI green."
