//! Workspace-local micro-benchmark harness.
//!
//! The build environment cannot fetch the real `criterion`, so this crate
//! implements the subset of its API the repo's benches use: `Criterion`
//! with `sample_size` / `measurement_time` / `warm_up_time`, benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is plain wall-clock sampling with a
//! median-of-samples report (no statistical regression analysis or HTML
//! output).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. All variants behave identically
/// here (one routine call per setup); the distinction only matters for the
/// real criterion's batching heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (cloned fresh each iteration).
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("lad", 128)` renders as `lad/128`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter id (`from_parameter(128)` renders as `128`).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the most recent timing call.
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.sample_ns.push(total * 1e9 / iters as f64);
    }

    /// Times `routine` on fresh state from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample.max(1);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.sample_ns
            .push(total.as_secs_f64() * 1e9 / iters as f64);
    }
}

/// Benchmark driver: collects samples and prints a one-line report per
/// benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_benchmark(self, name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &label, |b| f(b));
        self
    }

    /// Ends the group (report lines are already printed per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    // Warm-up: run the closure with single-iteration samples until the
    // warm-up budget is spent, calibrating iterations per sample.
    let mut bencher = Bencher {
        sample_ns: Vec::new(),
        iters_per_sample: 1,
    };
    let warm_start = Instant::now();
    let mut warm_runs = 0u64;
    while warm_start.elapsed() < criterion.warm_up_time || warm_runs == 0 {
        f(&mut bencher);
        warm_runs += 1;
        if warm_runs >= 10_000 {
            break;
        }
    }
    let observed_ns = median(&mut bencher.sample_ns).max(1.0);

    // Calibrate so the full measurement fits the time budget.
    let budget_ns = criterion.measurement_time.as_secs_f64() * 1e9;
    let total_iters = (budget_ns / observed_ns).clamp(1.0, 1e9);
    let iters_per_sample = (total_iters / criterion.sample_size as f64).max(1.0) as u64;

    let mut bencher = Bencher {
        sample_ns: Vec::new(),
        iters_per_sample,
    };
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
    }
    let mid = median(&mut bencher.sample_ns);
    println!("{label:<50} time: {:>12} /iter", format_ns(mid));
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group entry point (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_ns: Vec::new(),
            iters_per_sample: 10,
        };
        b.iter(|| 1 + 1);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.sample_ns.len(), 2);
        assert!(b.sample_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut a = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut a), 2.0);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("lad", 128).label, "lad/128");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn full_run_is_quick_with_tiny_budget() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| 0u8));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &1, |b, &x| b.iter(|| x));
        group.finish();
    }
}
