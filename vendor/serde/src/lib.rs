//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `serde` cannot be fetched. This repo uses serde purely as
//! `#[derive(Serialize, Deserialize)]` markers on plain-old-data structs —
//! nothing ever constructs a serializer — so a pair of marker traits and
//! no-op derive macros satisfy every use site without touching the annotated
//! source. If real serialization is ever needed, replace this crate with the
//! actual `serde` in the workspace manifest.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
