//! Workspace-local stand-in for `serde_derive`.
//!
//! The real derive macros generate (de)serialization impls; this repo only
//! uses the derives as markers on plain-old-data structs and never invokes a
//! serializer, so the derives expand to nothing. Kept as a separate
//! proc-macro crate so `#[derive(Serialize, Deserialize)]` resolves exactly
//! like the real crate and the annotated source stays untouched.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
