//! Deterministic RNG and case outcome types for the mini proptest runner.

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's precondition (`prop_assume!`) did not hold; draw again.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// SplitMix64 — small, fast, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test's
    /// module path), so every test draws its own reproducible stream.
    pub fn deterministic(tag: &str) -> TestRng {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for &b in tag.as_bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below: bound must be positive");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("tag");
        let mut b = TestRng::deterministic("tag");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_tags_diverge() {
        let mut a = TestRng::deterministic("tag-a");
        let mut b = TestRng::deterministic("tag-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
