//! Workspace-local property-testing engine.
//!
//! The build environment cannot fetch the real `proptest`, so this crate
//! implements the subset of its API that the repo's property tests use —
//! numeric range strategies, tuples, `prop::collection::vec`, `prop_map`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros — backed by
//! a real generate-and-check runner (256 deterministic cases per test,
//! seeded from the test's module path so failures reproduce). Shrinking is
//! not implemented; failing cases print their generated inputs instead.

pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Mirrors the `proptest::prop` module tree (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Declares property tests. Each argument is drawn from its strategy for a
/// fixed number of cases; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let cases: u32 = 256;
                let mut executed: u32 = 0;
                let mut attempts: u32 = 0;
                while executed < cases {
                    attempts += 1;
                    assert!(
                        attempts < cases * 16,
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let rendered = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                msg, rendered
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

/// Discards the current case (drawn again) when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
