//! Value-generation strategies: numeric ranges, tuples, vectors, and
//! `prop_map` combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// engine generates plain values (no shrinking), which is all the repo's
/// property tests rely on.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let unit = rng.unit_f64();
                (f64::from(self.start) + unit * (f64::from(self.end) - f64::from(self.start))) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy for `Vec`s with element strategy `S` and a length range
/// (mirrors `prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]; lengths are drawn uniformly from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("int");
        for _ in 0..1000 {
            let x = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (0u16..=u16::MAX).generate(&mut rng);
            let _ = y; // full-width: any value is valid
            let z = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("float");
        for _ in 0..1000 {
            let x = (-2.5f32..4.0).generate(&mut rng);
            assert!((-2.5..4.0).contains(&x));
            let y = (1e-3f64..1e3).generate(&mut rng);
            assert!((1e-3..1e3).contains(&y));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(0u32..10, 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::deterministic("tuple");
        let (a, b, c) = (0u32..4, 10u64..20, -1.0f64..1.0).generate(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert!((-1.0..1.0).contains(&c));
    }
}
