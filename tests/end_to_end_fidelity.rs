//! Cross-crate integration: transformer substrate + attention backends +
//! evaluation metrics reproduce the paper's accuracy story (Tables I & II).

use lad::core::decoder::LadConfig;
use lad::eval::datasets::{generation_benchmarks, lm_corpus};
use lad::eval::quality::{generation_fidelity, perplexity};
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};

fn model() -> Model {
    Model::random(ModelConfig::tiny("it-model", 2, 64, 4), 1234)
}

#[test]
fn fidelity_ordering_matches_table_i() {
    // LAD >> Qserve-KV4 >> H2O in ROUGE against the original model.
    let model = model();
    let benches = generation_benchmarks(model.config().vocab as u32, 4, 42);
    let mut lad_total = 0.0;
    let mut qserve_total = 0.0;
    let mut h2o_total = 0.0;
    for bench in &benches {
        lad_total +=
            generation_fidelity(&model, &AttentionKind::Lad(LadConfig::default()), bench).rouge1;
        qserve_total += generation_fidelity(&model, &AttentionKind::QserveKv4, bench).rouge1;
        h2o_total += generation_fidelity(&model, &AttentionKind::h2o_default(), bench).rouge1;
    }
    let n = benches.len() as f64;
    let (lad, qserve, h2o) = (lad_total / n, qserve_total / n, h2o_total / n);
    assert!(lad > 0.85, "LAD rouge1 {lad}");
    assert!(lad > qserve, "LAD {lad} <= Qserve {qserve}");
    assert!(qserve > h2o, "Qserve {qserve} <= H2O {h2o}");
}

#[test]
fn perplexity_matches_table_ii() {
    // LAD's perplexity equals the original's; H2O's is worse.
    let model = model();
    let (_, corpus) = lm_corpus("wikitext2", model.config().vocab as u32, 150, 99);
    let original = perplexity(&model, &AttentionKind::Exact, &corpus);
    let lad = perplexity(&model, &AttentionKind::Lad(LadConfig::default()), &corpus);
    let h2o = perplexity(&model, &AttentionKind::h2o_default(), &corpus);
    assert!(
        (lad - original).abs() / original < 0.01,
        "original {original} vs LAD {lad}"
    );
    assert!(
        h2o > original,
        "H2O {h2o} should exceed original {original}"
    );
}

#[test]
fn lad_sessions_expose_sublinear_kv_reads() {
    // The LAD backend's own instrumentation shows KV reads well below n on a
    // real decode once the cache warms up.
    let model = model();
    let mut session = Session::new(&model, &AttentionKind::Lad(LadConfig::default()));
    let prompt: Vec<u32> = (0..150).map(|i| (i * 11 + 1) % 256).collect();
    session.prefill(&prompt);
    let stats = session.last_stats();
    assert_eq!(stats.len(), model.config().layers * model.config().heads);
    for s in stats {
        assert_eq!(s.n, 150);
        assert!(
            s.kv_reads() < s.n,
            "head read {} of {} positions",
            s.kv_reads(),
            s.n
        );
    }
}

#[test]
fn lossless_backends_agree_on_short_horizons() {
    // Over very short generations the information-preserving backends track
    // the original (errors need sequence length to compound). H2O is
    // excluded: its keep budget at n=4 is just two positions, so it discards
    // information immediately by design.
    let model = model();
    let prompt = [1u32, 5, 7];
    let mut reference = Session::new(&model, &AttentionKind::Exact);
    let expected = reference.generate_greedy(&prompt, 4);
    for kind in [
        AttentionKind::Lad(LadConfig::default()),
        AttentionKind::QserveKv4,
    ] {
        let mut session = Session::new(&model, &kind);
        let got = session.generate_greedy(&prompt, 4);
        let agree = expected.iter().zip(&got).filter(|(a, b)| a == b).count();
        assert!(agree >= 3, "{kind:?} diverged immediately: {agree}/4");
    }
}
