//! Cross-crate integration: trace generation → statistics → accelerator
//! evaluation reproduces the paper's performance story (Figs. 7–10).

use lad::accel::config::AccelConfig;
use lad::accel::gpu::GpuBaseline;
use lad::accel::perf::{evaluate, evaluate_best_batch, Platform};
use lad::accel::workload::workload_stats;
use lad::model::config::ModelConfig;

#[test]
fn attention_speedup_grows_with_kv_length() {
    // Fig. 7(a): LAD's advantage over the GPU grows as the KV cache grows.
    let model = ModelConfig::llama2_7b();
    let mut last = 0.0;
    for n in [512usize, 1024, 2048, 4096] {
        let stats = workload_stats(n, 3);
        let gpu = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats);
        let lad = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_2_5()), &model, n, &stats);
        let speedup = lad.attn_tokens_per_s / gpu.attn_tokens_per_s;
        assert!(speedup > last, "speedup fell at n={n}: {speedup} <= {last}");
        last = speedup;
    }
    assert!(last > 5.0, "final speedup {last}");
}

#[test]
fn config_ordering_holds_in_group2() {
    // Fig. 7: more SRAM never hurts, and helps most at long KV lengths.
    let model = ModelConfig::llama2_7b();
    let n = 4096;
    let stats = workload_stats(n, 3);
    let mut last = 0.0;
    for cfg in AccelConfig::paper_configs() {
        let r = evaluate_best_batch(&Platform::Lad(cfg), &model, n, &stats);
        assert!(
            r.attn_tokens_per_s >= last,
            "throughput fell with more SRAM"
        );
        last = r.attn_tokens_per_s;
    }
}

#[test]
fn lad_latency_below_ideal_and_attention_share_stays_flat() {
    // Fig. 8 (right): LAD is faster than the ideal accelerator, and its
    // attention share barely grows with KV length while the ideal's surges.
    let model = ModelConfig::llama2_13b();
    let cfg = AccelConfig::lad_3_5();
    let share = |r: &lad::accel::PerfResult| r.attn_seconds / r.e2e_seconds;
    let mut lad_shares = Vec::new();
    let mut ideal_shares = Vec::new();
    for n in [512usize, 4096] {
        let stats = workload_stats(n, 3);
        let ideal = evaluate(&Platform::Ideal(cfg.clone()), &model, n, &stats, 4);
        let lad = evaluate(&Platform::Lad(cfg.clone()), &model, n, &stats, 4);
        assert!(
            lad.e2e_seconds < ideal.e2e_seconds,
            "LAD not below ideal at n={n}"
        );
        lad_shares.push(share(&lad));
        ideal_shares.push(share(&ideal));
    }
    let lad_growth = lad_shares[1] - lad_shares[0];
    let ideal_growth = ideal_shares[1] - ideal_shares[0];
    assert!(
        lad_growth < ideal_growth / 2.0,
        "LAD share grew {lad_growth:.3} vs ideal {ideal_growth:.3}"
    );
    // Paper: +3 % for LLaMA2-13B on LAD-3.5 from 512 to 4096.
    assert!(
        lad_growth < 0.10,
        "LAD attention share grew {lad_growth:.3}"
    );
}

#[test]
fn energy_story_holds_across_models() {
    // Fig. 9: every paper model enjoys order-of-magnitude attention energy
    // efficiency at its longest supported length.
    for model in ModelConfig::paper_models() {
        let n = model.max_seq;
        let stats = workload_stats(n, 3);
        let gpu = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats);
        let lad = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_2_5()), &model, n, &stats);
        let gpu_eff = gpu.batch as f64 / gpu.attn_energy_j;
        let lad_eff = lad.batch as f64 / lad.attn_energy_j;
        assert!(
            lad_eff / gpu_eff > 8.0,
            "{}: attention energy efficiency only {:.1}x",
            model.name,
            lad_eff / gpu_eff
        );
    }
}

#[test]
fn hbm_breakdown_shrinks_relative_to_dense() {
    // Fig. 8 (left): LAD's total attention traffic relative to dense access
    // shrinks as the KV cache grows.
    use lad::accel::AttentionTraffic;
    let d = 128;
    let rel = |n: usize| {
        let stats = workload_stats(n, 3);
        let t = AttentionTraffic::from_stats(&stats, n, d, 17, 0.0);
        t.total_bytes() / AttentionTraffic::dense_bytes(n, d)
    };
    assert!(rel(4096) < rel(1024));
    assert!(rel(4096) < 0.25, "relative traffic {}", rel(4096));
}
