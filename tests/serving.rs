//! Serving differential harness: continuous batching vs solo decoding.
//!
//! The serving engine's tentpole invariant extends the repo's scheduling
//! contract to dynamic membership: whatever the admission pattern —
//! staggered joins, mid-flight retirement through ragged `max_tokens`,
//! recompute preemption under pool pressure, EOS truncation — every
//! request's generated token stream must be **bit-identical** to decoding
//! that request alone in a solo [`lad::model::transformer::Session`] with
//! the same attention backend. The fixed-batch baseline must agree too
//! (it is the goodput comparison's control, so it has to be correct).
//!
//! The grid sweeps {attention kind × batch budget × prefill chunk × pool
//! size × arrival pattern}; at least one grid point uses a pool small
//! enough that preemption *must* occur, and the harness asserts it did.
//!
//! Interpreting a mismatch: see `tests/README.md`.

use lad::core::decoder::LadConfig;
use lad::math::pwl::PwlExp;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::spec::SpecConfig;
use lad::model::transformer::{Model, Session};
use lad::serve::baseline::serve_fixed_batches;
use lad::serve::{Engine, Request, ServeConfig, ServeReport};
use lad_accel::paged::{BlockPool, BLOCK_TOKENS};

/// One request of a grid point: (id, prompt length, max_tokens, arrival).
type Spec = (u64, usize, usize, usize);

/// Which attention backend a grid point serves with.
#[derive(Clone, Copy)]
enum GridBackend {
    Exact,
    Lad,
    TopK,
    H2o,
}

/// One grid point of the serving sweep.
struct ServeGrid {
    label: &'static str,
    backend: GridBackend,
    model_seed: u64,
    /// KV pool capacity in blocks.
    pool_blocks: usize,
    max_active: usize,
    prefill_chunk: usize,
    specs: &'static [Spec],
    /// Request ids that opt into speculative decoding (recency drafter,
    /// K = 4); everything else decodes plainly in the same ticks.
    spec_ids: &'static [u64],
    /// This grid point must preempt at least once.
    expect_preemption: bool,
}

impl ServeGrid {
    fn model(&self) -> Model {
        Model::random(ModelConfig::tiny("serve-diff", 2, 32, 2), self.model_seed)
    }

    fn kind(&self) -> AttentionKind {
        match self.backend {
            GridBackend::Exact => AttentionKind::Exact,
            GridBackend::Lad => AttentionKind::Lad(LadConfig {
                window: 8,
                ..LadConfig::new(PwlExp::accurate_default())
            }),
            GridBackend::TopK => AttentionKind::topk(6),
            GridBackend::H2o => AttentionKind::h2o_budget(10, 4),
        }
    }

    fn pool(&self) -> BlockPool {
        let cfg = ModelConfig::tiny("serve-diff", 2, 32, 2);
        let block_bytes = cfg.layers * 2 * cfg.hidden * 2 * BLOCK_TOKENS;
        BlockPool::new(&cfg, self.pool_blocks * block_bytes)
    }

    fn cfg(&self) -> ServeConfig {
        ServeConfig {
            max_active: self.max_active,
            prefill_chunk: self.prefill_chunk,
            eos: None,
            parallelism: 1,
            ..ServeConfig::default()
        }
    }

    fn prompt(&self, id: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| ((i as u64 * 37 + self.model_seed + id * 13) % 256) as u32)
            .collect()
    }
}

/// Solo greedy reference for one request, truncated after the first EOS
/// (inclusive) the way the engine retires.
fn solo(
    model: &Model,
    kind: &AttentionKind,
    prompt: &[u32],
    max: usize,
    eos: Option<u32>,
) -> Vec<u32> {
    let mut session = Session::new(model, kind);
    let full = session.generate_greedy(prompt, max);
    match eos.and_then(|e| full.iter().position(|&t| t == e)) {
        Some(at) => full[..=at].to_vec(),
        None => full,
    }
}

fn assert_streams_match(g: &ServeGrid, which: &str, model: &Model, report: &ServeReport) {
    assert_eq!(
        report.outcomes.len(),
        g.specs.len(),
        "{}/{which}: not every request retired",
        g.label
    );
    let kind = g.kind();
    for &(id, plen, max, _) in g.specs {
        let got = &report
            .outcomes
            .iter()
            .find(|o| o.id == id)
            .unwrap_or_else(|| panic!("{}/{which}: request {id} missing", g.label))
            .tokens;
        let want = solo(model, &kind, &g.prompt(id, plen), max, None);
        assert_eq!(
            got, &want,
            "{}/{which}: request {id} token stream diverged from solo decode",
            g.label
        );
    }
}

fn build_request(g: &ServeGrid, id: u64, plen: usize, max: usize, at: usize) -> Request {
    let req = Request::new(id, g.prompt(id, plen), max).arriving_at(at);
    if g.spec_ids.contains(&id) {
        req.with_speculation(SpecConfig::recency(4))
    } else {
        req
    }
}

fn run_grid_point(g: &ServeGrid) {
    let model = g.model();
    let kind = g.kind();

    // Continuous engine leg.
    let mut engine = Engine::new(&model, &kind, g.pool(), g.cfg());
    for &(id, plen, max, at) in g.specs {
        engine.submit(build_request(g, id, plen, max, at));
    }
    let report = engine.run();
    assert_streams_match(g, "continuous", &model, &report);
    if g.expect_preemption {
        assert!(
            report.preemptions >= 1,
            "{}: grid point engineered for preemption never preempted",
            g.label
        );
    } else {
        assert_eq!(report.preemptions, 0, "{}: unexpected preemption", g.label);
    }
    if g.spec_ids.is_empty() {
        assert_eq!(
            report.accepted_len.count(),
            0,
            "{}: verify rounds recorded without speculative requests",
            g.label
        );
    } else {
        assert!(
            report.accepted_len.count() > 0,
            "{}: speculative requests never ran a verify round",
            g.label
        );
        assert!(
            report.spec_accepted <= report.spec_drafted,
            "{}: accepted more than was drafted",
            g.label
        );
    }

    // Fixed-batch baseline leg (the goodput control must agree too; it
    // ignores the speculation opt-in and decodes plainly, which must not
    // change a single token).
    let requests: Vec<Request> = g
        .specs
        .iter()
        .map(|&(id, plen, max, at)| build_request(g, id, plen, max, at))
        .collect();
    let fixed = serve_fixed_batches(&model, &kind, &g.cfg(), requests);
    assert_streams_match(g, "fixed", &model, &fixed);
}

/// Ragged max_tokens at a shared arrival: members retire mid-flight and the
/// engine back-fills the freed slots from the queue.
static RAGGED: &[Spec] = &[(0, 9, 14, 0), (1, 5, 6, 0), (2, 12, 10, 0), (3, 7, 18, 0)];

/// Staggered arrivals with gaps: admission happens mid-flight and the
/// engine idles between waves.
static STAGGERED: &[Spec] = &[(0, 8, 10, 0), (1, 6, 8, 3), (2, 10, 6, 3), (3, 5, 12, 9)];

/// Two long decodes against a three-block pool: the pool must run dry and
/// evict the youngest (recompute preemption), then still finish bit-exact.
static PRESSURE: &[Spec] = &[(0, 8, 24, 0), (1, 8, 24, 0)];

/// Speculative pressure: 12-token prompts leave only 4 tokens of slack in
/// the first block, so both speculating requests must claim a second block
/// a few verify rounds into decode — one of them finds the pool dry there.
static SPEC_PRESSURE: &[Spec] = &[(0, 12, 24, 0), (1, 12, 24, 0)];

#[test]
fn serving_differential_exact_ragged_retirement() {
    run_grid_point(&ServeGrid {
        label: "exact-ragged",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 64,
        max_active: 2,
        prefill_chunk: 1,
        specs: RAGGED,
        spec_ids: &[],
        expect_preemption: false,
    });
}

#[test]
fn serving_differential_exact_staggered_chunked_prefill() {
    run_grid_point(&ServeGrid {
        label: "exact-staggered",
        backend: GridBackend::Exact,
        model_seed: 11,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 4,
        specs: STAGGERED,
        spec_ids: &[],
        expect_preemption: false,
    });
}

#[test]
fn serving_differential_exact_forced_preemption() {
    run_grid_point(&ServeGrid {
        label: "exact-preempt",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 3,
        max_active: 2,
        prefill_chunk: 1,
        specs: PRESSURE,
        spec_ids: &[],
        expect_preemption: true,
    });
}

#[test]
fn serving_differential_lad_staggered() {
    run_grid_point(&ServeGrid {
        label: "lad-staggered",
        backend: GridBackend::Lad,
        model_seed: 29,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 2,
        specs: STAGGERED,
        spec_ids: &[],
        expect_preemption: false,
    });
}

#[test]
fn serving_differential_lad_forced_preemption() {
    run_grid_point(&ServeGrid {
        label: "lad-preempt",
        backend: GridBackend::Lad,
        model_seed: 71,
        pool_blocks: 3,
        max_active: 2,
        prefill_chunk: 1,
        specs: PRESSURE,
        spec_ids: &[],
        expect_preemption: true,
    });
}

/// Mixed-mode leg: speculative and plain requests share every tick — the
/// speculative ones contribute multi-row verify runs to the same GEMM
/// steps the plain ones ride — and each stream must still match its solo
/// decode exactly.
#[test]
fn serving_differential_mixed_speculative_and_plain() {
    run_grid_point(&ServeGrid {
        label: "exact-mixed-spec",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 2,
        specs: RAGGED,
        spec_ids: &[0, 2],
        expect_preemption: false,
    });
}

/// Mixed-mode leg under the LAD backend: verify rounds roll LAD's mode
/// tracker, center book and intermediate caches back through checkpoints,
/// which must be invisible in the streams.
#[test]
fn serving_differential_lad_mixed_speculative() {
    run_grid_point(&ServeGrid {
        label: "lad-mixed-spec",
        backend: GridBackend::Lad,
        model_seed: 29,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 2,
        specs: STAGGERED,
        spec_ids: &[1, 3],
        expect_preemption: false,
    });
}

/// Speculative pressure leg: two speculating requests against a three-block
/// pool. Both must cross the 16-token block boundary a few tokens into
/// decode, so whichever crosses second is preempted *mid-speculation* —
/// draft rows reserved, drafter table populated — and recomputed. The
/// recovered streams must still be bit-identical to solo decode.
#[test]
fn serving_differential_speculative_forced_preemption() {
    run_grid_point(&ServeGrid {
        label: "exact-spec-preempt",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 3,
        max_active: 2,
        prefill_chunk: 1,
        specs: SPEC_PRESSURE,
        spec_ids: &[0, 1],
        expect_preemption: true,
    });
}

/// Top-k sparse attention under staggered arrivals and chunked prefill:
/// the per-step top-k selection must be oblivious to scheduling.
#[test]
fn serving_differential_topk_staggered() {
    run_grid_point(&ServeGrid {
        label: "topk-staggered",
        backend: GridBackend::TopK,
        model_seed: 29,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 2,
        specs: STAGGERED,
        spec_ids: &[],
        expect_preemption: false,
    });
}

/// Top-k never evicts KV, so it hits pool pressure exactly like exact
/// attention: the youngest request is recomputed and its per-step
/// selections must replay identically from the folded prompt.
#[test]
fn serving_differential_topk_forced_preemption() {
    run_grid_point(&ServeGrid {
        label: "topk-preempt",
        backend: GridBackend::TopK,
        model_seed: 71,
        pool_blocks: 3,
        max_active: 2,
        prefill_chunk: 1,
        specs: PRESSURE,
        spec_ids: &[],
        expect_preemption: true,
    });
}

/// H2O heavy-hitter eviction under staggered arrivals: accumulated
/// attention scores (and therefore eviction picks) depend only on the
/// request's own stream, never on batch membership.
#[test]
fn serving_differential_h2o_staggered() {
    run_grid_point(&ServeGrid {
        label: "h2o-staggered",
        backend: GridBackend::H2o,
        model_seed: 11,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 4,
        specs: STAGGERED,
        spec_ids: &[],
        expect_preemption: false,
    });
}

/// Forced preemption of H2O sequences: the victim's eviction state
/// (cumulative scores, alive mask) is dropped with its KV and must be
/// reproduced exactly by replaying the folded prompt through H2O again.
#[test]
fn serving_differential_h2o_forced_preemption() {
    run_grid_point(&ServeGrid {
        label: "h2o-preempt",
        backend: GridBackend::H2o,
        model_seed: 71,
        pool_blocks: 3,
        max_active: 2,
        prefill_chunk: 1,
        specs: PRESSURE,
        spec_ids: &[],
        expect_preemption: true,
    });
}

/// Speculative decoding over H2O: verify rounds evict based on draft rows
/// and the rollback must restore the cumulative-score book and alive mask
/// bit-exactly, invisible in the committed streams.
#[test]
fn serving_differential_h2o_mixed_speculative() {
    run_grid_point(&ServeGrid {
        label: "h2o-mixed-spec",
        backend: GridBackend::H2o,
        model_seed: 29,
        pool_blocks: 64,
        max_active: 3,
        prefill_chunk: 2,
        specs: STAGGERED,
        spec_ids: &[1, 3],
        expect_preemption: false,
    });
}

/// Mixed-backend leg: one engine tick carries exact, LAD, top-k and H2O
/// requests simultaneously (per-request [`Request::with_backend`]
/// overrides); every stream must match its own backend's solo decode.
#[test]
fn serving_differential_mixed_backends_share_ticks() {
    let g = ServeGrid {
        label: "mixed-backends",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 64,
        max_active: 4,
        prefill_chunk: 2,
        specs: &[],
        spec_ids: &[],
        expect_preemption: false,
    };
    let model = g.model();
    let kinds: Vec<AttentionKind> = vec![
        AttentionKind::Exact,
        AttentionKind::Lad(LadConfig {
            window: 8,
            ..LadConfig::new(PwlExp::accurate_default())
        }),
        AttentionKind::topk(6),
        AttentionKind::h2o_budget(10, 4),
    ];
    let mut engine = Engine::new(&model, &AttentionKind::Exact, g.pool(), g.cfg());
    for (id, kind) in kinds.iter().enumerate() {
        let id = id as u64;
        engine.submit(
            Request::new(id, g.prompt(id, 8 + id as usize), 16)
                .arriving_at(id as usize)
                .with_backend(kind.clone()),
        );
    }
    let report = engine.run();
    assert_eq!(report.outcomes.len(), kinds.len());
    assert_eq!(report.preemptions, 0);
    for (id, kind) in kinds.iter().enumerate() {
        let id = id as u64;
        let got = &report
            .outcomes
            .iter()
            .find(|o| o.id == id)
            .unwrap_or_else(|| panic!("mixed-backends: request {id} missing"))
            .tokens;
        let want = solo(&model, kind, &g.prompt(id, 8 + id as usize), 16, None);
        assert_eq!(
            got, &want,
            "mixed-backends: request {id} diverged under {kind:?}"
        );
    }
}

/// EOS truncation leg: the engine must stop exactly where the solo decode
/// first emits the EOS token, include it, and report `FinishReason::Eos`.
#[test]
fn serving_differential_eos_truncation() {
    let g = ServeGrid {
        label: "exact-eos",
        backend: GridBackend::Exact,
        model_seed: 71,
        pool_blocks: 64,
        max_active: 2,
        prefill_chunk: 2,
        specs: &[],
        spec_ids: &[],
        expect_preemption: false,
    };
    let model = g.model();
    let kind = g.kind();
    let p = g.prompt(0, 10);
    let reference = solo(&model, &kind, &p, 14, None);
    let eos = reference[3];
    let want = solo(&model, &kind, &p, 14, Some(eos));
    assert!(want.len() < 14, "chosen EOS token must truncate the stream");

    let cfg = ServeConfig {
        eos: Some(eos),
        ..g.cfg()
    };
    let mut engine = Engine::new(&model, &kind, g.pool(), cfg);
    engine.submit(Request::new(0, p, 14));
    let report = engine.run();
    assert_eq!(report.outcomes[0].tokens, want);
    assert_eq!(
        report.outcomes[0].finish,
        lad::serve::FinishReason::Eos,
        "EOS retirement must be reported as such"
    );
}
