//! Allocation accounting for the observability layer's zero-cost contract.
//!
//! A counting `#[global_allocator]` (per-thread counter, so pool workers and
//! the test harness never pollute a measurement) pins two claims from
//! `crates/lad-obs/README.md`:
//!
//! 1. A disabled `span()` / `instant()` call allocates nothing — the record
//!    path is one thread-local read plus one relaxed atomic load.
//! 2. The instrumentation woven through `Session::step` adds zero
//!    allocations to the decode hot path: the steady-state allocation count
//!    of a parallelism-1 decode is identical whether the recorder was never
//!    enabled, was enabled and then disabled, or is actively recording
//!    (ring buffers are allocated once per thread on the *first* enabled
//!    record, which the warm-up step absorbs; events are `Copy` writes into
//!    the fixed ring).
//! 3. The metrics registry and the request timeline honour the same
//!    contract: `Counter::inc`, `Gauge::set`, `MetricHistogram::record` and
//!    `timeline::record` allocate nothing while disabled *and* nothing
//!    while enabled (handles are resolved and the timeline ring warmed
//!    outside the counted region — registration and the one-time ring
//!    reservation are setup, not record-path, costs).
//!
//! One `#[test]` only: the recorders and the allocation counter are
//! process-global, and a sibling test running concurrently could enable a
//! recorder mid-measurement.

use lad::core::decoder::LadConfig;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::{argmax, Model, Session};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Forwards to the system allocator, counting allocations made by the
/// current thread. `try_with` tolerates the TLS slot being gone during
/// thread teardown (allocations can happen after TLS destructors run).
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Runs `f`, returning its result and the number of allocations it made on
/// this thread.
fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let out = f();
    (out, THREAD_ALLOCS.with(Cell::get) - before)
}

const PROMPT_LEN: usize = 8;
const STEPS: usize = 24;

fn prompt() -> Vec<u32> {
    (0..PROMPT_LEN as u32).map(|i| (i * 37 + 3) % 256).collect()
}

/// Greedy-decodes `STEPS` tokens on a fresh parallelism-1 session and
/// returns the tokens plus the allocation count of the steady-state steps.
/// The prefill and one warm-up step run uncounted: scratch growth, stats
/// capacity, and (when the recorder is enabled) the thread's ring buffer
/// all land there by design.
fn steady_state_decode(model: &Model, kind: &AttentionKind) -> (Vec<u32>, u64) {
    let mut session = Session::with_parallelism(model, kind, 1);
    let mut logits = session.prefill(&prompt());
    let mut tokens = Vec::with_capacity(STEPS);
    let next = argmax(&logits);
    tokens.push(next);
    logits = session.step(next);
    let (tokens, steady_allocs) = counted(move || {
        for _ in 1..STEPS {
            let next = argmax(&logits);
            tokens.push(next);
            logits = session.step(next);
        }
        tokens
    });
    (tokens, steady_allocs)
}

#[test]
fn recorder_adds_zero_allocations() {
    // --- Claim 1: the disabled record path never allocates. ---
    lad::obs::set_enabled(false);
    // Warm the thread-local shard index outside the counted region.
    lad::obs::instant("alloc.warmup");
    drop(lad::obs::span("alloc.warmup"));
    let ((), span_allocs) = counted(|| {
        for _ in 0..16_384 {
            let _guard = lad::obs::span("alloc.probe");
            lad::obs::instant("alloc.probe");
        }
    });
    assert_eq!(
        span_allocs, 0,
        "disabled span()/instant() calls allocated {span_allocs} times"
    );

    // --- Claim 2: instrumentation adds nothing to the decode hot path. ---
    let model = Model::random(ModelConfig::tiny("alloc", 2, 64, 2), 3);
    let kind = AttentionKind::Lad(LadConfig::default());

    // Baseline: recorder never enabled in this process so far.
    let (base_tokens, base_allocs) = steady_state_decode(&model, &kind);

    // Enabled-then-disabled: the state every production process that ever
    // captured a trace sits in. Must be indistinguishable from the baseline.
    lad::obs::set_enabled(true);
    drop(lad::obs::span("alloc.ring_warmup"));
    lad::obs::set_enabled(false);
    let _ = lad::obs::drain();
    let (toggled_tokens, toggled_allocs) = steady_state_decode(&model, &kind);
    assert_eq!(
        base_tokens, toggled_tokens,
        "recorder toggle changed tokens"
    );
    assert_eq!(
        base_allocs, toggled_allocs,
        "enabled-then-disabled recorder changed the steady-state allocation \
         count ({base_allocs} -> {toggled_allocs})"
    );

    // Actively recording: the ring is preallocated (warm-up step), so even
    // with every span live the decode must allocate exactly as often as the
    // uninstrumented baseline.
    lad::obs::set_enabled(true);
    let (on_tokens, on_allocs) = steady_state_decode(&model, &kind);
    lad::obs::set_enabled(false);
    let drained = lad::obs::drain();
    assert_eq!(base_tokens, on_tokens, "enabled recorder changed tokens");
    assert_eq!(
        base_allocs, on_allocs,
        "enabled recorder allocated on the record path \
         ({base_allocs} -> {on_allocs})"
    );
    assert!(
        drained.iter().any(|t| !t.events.is_empty()),
        "enabled decode recorded no events"
    );

    // --- Claim 3: metric and timeline record paths are allocation-free in
    // both states. Handles resolve once up front (registration locks and
    // may grow the registry — a setup cost, like building a session).
    let counter = lad::obs::metrics::counter("alloc.probe_counter");
    let gauge = lad::obs::metrics::gauge("alloc.probe_gauge");
    let hist = lad::obs::metrics::histogram("alloc.probe_hist");

    lad::obs::metrics::set_metrics_enabled(false);
    lad::obs::timeline::set_timeline_enabled(false);
    let ((), off_allocs) = counted(|| {
        for i in 0..16_384u64 {
            counter.inc(1);
            gauge.set(i as i64);
            hist.record(i);
            lad::obs::timeline::record(7, lad::obs::timeline::TimelineKind::DecodeTick, i, 1);
        }
    });
    assert_eq!(
        off_allocs, 0,
        "disabled metric/timeline records allocated {off_allocs} times"
    );

    // Enabled: warm the timeline ring (its one-time lazy reservation) and
    // then demand a clean record path.
    lad::obs::metrics::set_metrics_enabled(true);
    lad::obs::timeline::set_timeline_enabled(true);
    lad::obs::timeline::record(7, lad::obs::timeline::TimelineKind::Admit, 0, 0);
    let ((), on_metric_allocs) = counted(|| {
        for i in 0..16_384u64 {
            counter.inc(1);
            gauge.set(i as i64);
            hist.record(i);
            lad::obs::timeline::record(7, lad::obs::timeline::TimelineKind::DecodeTick, i, 1);
        }
    });
    lad::obs::metrics::set_metrics_enabled(false);
    lad::obs::timeline::set_timeline_enabled(false);
    let (events, _) = lad::obs::timeline::drain_timeline();
    assert_eq!(
        on_metric_allocs, 0,
        "enabled metric/timeline records allocated {on_metric_allocs} times"
    );
    // Only the enabled loop's increments landed (the disabled loop is a
    // no-op by claim 1 of the registry contract).
    assert_eq!(counter.value(), 16_384, "counter lost increments");
    assert!(!events.is_empty(), "enabled timeline recorded no events");

    // --- Histogram quantiles honour the power-of-two error bound even
    // through the registry handle: estimate in [true, 2*true). The counted
    // loop recorded 0..16384 uniformly, so spot-check interior quantiles
    // (the uniform stream's true q-quantile is ~q*16384).
    let snap = hist.snapshot();
    for q in [0.25f64, 0.5, 0.9, 0.99] {
        let truth = (q * 16_384.0).ceil() as u64;
        let est = snap.quantile(q);
        assert!(
            est >= truth.saturating_sub(1) && est < 2 * truth.max(1),
            "q={q}: registry histogram estimate {est} outside [{truth}, {})",
            2 * truth.max(1)
        );
    }
}
