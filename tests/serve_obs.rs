//! Observability of the serving engine: per-request timelines, the SLO
//! flight recorder, and the metrics registry's cross-subsystem exposition.
//!
//! The recorders are process-global (one enable flag, one timeline ring,
//! one registry), so every test serializes on `LOCK` and drains the
//! timeline ring before and after its workload; metric assertions are
//! deltas, never absolutes, because counters accumulate across tests.
//!
//! Interpreting a failure: a broken **chain** (`validate_chains` error)
//! means the engine emitted lifecycle events out of order — e.g. a decode
//! tick after retirement, or a re-admission without a preemption; a missing
//! **exposition name** means an instrumented subsystem stopped registering
//! its metrics (the handle resolution moved or the weave was dropped).

use lad::accel::paged::BlockPool;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::Model;
use lad::obs::metrics::{self, prometheus_text, validate_prometheus};
use lad::obs::timeline::{self, TimelineKind};
use lad::serve::{incidents_json, Engine, IncidentReason, Request, ServeConfig, ServeReport};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests: the recorders are process-global. Recovered on poison
/// so one failing test does not cascade.
static LOCK: Mutex<()> = Mutex::new(());

fn model_cfg() -> ModelConfig {
    ModelConfig::tiny("serve-obs", 2, 32, 2)
}

fn tiny_model() -> Model {
    Model::random(model_cfg(), 71)
}

/// Blocks→bytes for the tiny model above.
fn budget(blocks: usize) -> usize {
    let cfg = model_cfg();
    cfg.layers * 2 * cfg.hidden * 2 * lad::accel::paged::BLOCK_TOKENS * blocks
}

fn prompt(seed: u64, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 37 + seed * 13) % 256) as u32)
        .collect()
}

/// Runs `requests` through a fresh engine with every recorder on and
/// returns (report, drained timeline events).
fn serve_recorded(
    kind: &AttentionKind,
    pool_blocks: usize,
    cfg: ServeConfig,
    requests: Vec<Request>,
) -> (ServeReport, Vec<timeline::TimelineEvent>) {
    let model = tiny_model();
    let pool = BlockPool::new(&model_cfg(), budget(pool_blocks));
    let mut engine = Engine::new(&model, kind, pool, cfg);
    for req in requests {
        engine.submit(req);
    }
    timeline::drain_timeline(); // clear residue from earlier tests
    metrics::set_metrics_enabled(true);
    timeline::set_timeline_enabled(true);
    let report = engine.run();
    metrics::set_metrics_enabled(false);
    timeline::set_timeline_enabled(false);
    let (events, _) = timeline::drain_timeline();
    (report, events)
}

#[test]
fn forced_preemption_timeline_chains_through_readmission() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The three-block squeeze from the engine's preemption test: two
    // requests whose peaks cannot coexist, so the youngest is evicted and
    // replays.
    let cfg = ServeConfig {
        max_active: 2,
        prefill_chunk: 1,
        ..ServeConfig::default()
    };
    let requests = vec![
        Request::new(0, prompt(0, 8), 24),
        Request::new(1, prompt(1, 8), 24),
    ];
    let (report, events) = serve_recorded(&AttentionKind::Exact, 3, cfg, requests);

    assert!(report.preemptions >= 1, "squeeze must force a preemption");
    let chains = timeline::validate_chains(&events).expect("chains must validate");
    assert_eq!(chains.len(), 2);
    // Timeline preemption accounting must agree with the report exactly,
    // and every preempted request must show the re-admission leg.
    let chain_preemptions: usize = chains.values().map(|c| c.preemptions).sum();
    assert_eq!(chain_preemptions, report.preemptions);
    for (req, chain) in &chains {
        assert!(chain.retired, "request {req} never retired");
        assert_eq!(
            chain.admits,
            chain.preemptions + 1,
            "request {req}: each preemption must be followed by a re-admission"
        );
    }
}

#[test]
fn eviction_reclaim_events_cover_the_streaming_leg() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Streaming-window requests roll a live window over 80+ tokens, so
    // interior blocks go fully dead and are reclaimed mid-flight.
    let kind = AttentionKind::StreamingWindow {
        sinks: 4,
        window: 8,
    };
    let cfg = ServeConfig {
        max_active: 2,
        prefill_chunk: 4,
        ..ServeConfig::default()
    };
    let requests = vec![
        Request::new(0, prompt(0, 8), 80).with_backend(kind.clone()),
        Request::new(1, prompt(1, 8), 80).with_backend(kind.clone()),
    ];
    let reclaimed_before = metrics::counter("kv.blocks_reclaimed").value();
    let (report, events) = serve_recorded(&AttentionKind::Exact, 9, cfg, requests);

    assert_eq!(report.preemptions, 0, "reclaim must absorb the overhang");
    timeline::validate_chains(&events).expect("chains must validate");
    let reclaim_events: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TimelineKind::EvictionReclaim)
        .collect();
    assert!(
        !reclaim_events.is_empty(),
        "streaming eviction produced no reclaim events"
    );
    assert!(reclaim_events.iter().all(|e| e.value > 0));
    // The timeline's reclaimed-block total matches the pool's counter.
    let reclaimed: u64 = reclaim_events.iter().map(|e| e.value).sum();
    let pool_reclaimed = metrics::counter("kv.blocks_reclaimed").value() - reclaimed_before;
    assert_eq!(
        reclaimed, pool_reclaimed,
        "timeline and pool counter drifted"
    );
}

#[test]
fn deadline_miss_trips_the_flight_recorder() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = ServeConfig::default();
    let requests = vec![
        Request::new(0, prompt(0, 6), 8),
        Request::new(1, prompt(1, 6), 8).with_deadline(Duration::ZERO),
    ];
    let (report, _) = serve_recorded(&AttentionKind::Exact, 64, cfg, requests);

    let incident = report
        .incidents
        .iter()
        .find(|i| i.request == 1)
        .expect("zero deadline must trip the flight recorder");
    assert_eq!(incident.reason, IncidentReason::DeadlineMiss);
    // The capture carries the request's own recent timeline (admit through
    // retire) and a full metrics snapshot taken at the violation.
    assert!(!incident.events.is_empty());
    assert!(incident.events.iter().all(|e| e.request == 1));
    assert!(incident
        .events
        .iter()
        .any(|e| e.kind == TimelineKind::Retire));
    assert!(incident.metrics.get("serve.retired").is_some());
    assert!(incident.metrics.get("kv.blocks_total").is_some());
    // The JSON export round-trips through the repo's own parser.
    let json = incidents_json(&report.incidents);
    let doc = lad::obs::json::parse(&json).expect("incidents JSON must parse");
    let list = doc
        .get("incidents")
        .and_then(|v| v.as_array())
        .expect("incidents array");
    assert_eq!(list.len(), report.incidents.len());
    assert_eq!(
        list[0].get("reason").and_then(|v| v.as_str()),
        Some("deadline_miss")
    );
}

#[test]
fn preemption_storm_trips_the_flight_recorder_once() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // With the ceiling at 0, the very first preemption is a storm; the
    // squeeze preempts repeatedly but the incident fires exactly once per
    // request crossing.
    let cfg = ServeConfig {
        max_active: 2,
        prefill_chunk: 1,
        incident_max_preemptions: 0,
        ..ServeConfig::default()
    };
    let requests = vec![
        Request::new(0, prompt(0, 8), 24),
        Request::new(1, prompt(1, 8), 24),
    ];
    let (report, _) = serve_recorded(&AttentionKind::Exact, 3, cfg, requests);

    assert!(report.preemptions >= 1);
    let storms: Vec<_> = report
        .incidents
        .iter()
        .filter(|i| i.reason == IncidentReason::PreemptionStorm)
        .collect();
    assert!(!storms.is_empty(), "storm threshold 0 must capture");
    for inc in &storms {
        assert_eq!(inc.preemptions, 1, "storm trips at the first crossing");
    }
    // One capture per request, not one per preemption.
    let mut seen: Vec<u64> = storms.iter().map(|i| i.request).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), storms.len(), "a storm must capture only once");
}

#[test]
fn prometheus_exposition_covers_every_subsystem() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Mixed backends so distinct per-backend traffic counters register, and
    // parallelism 2 so the worker pool's gauges see real scheduling.
    let cfg = ServeConfig {
        max_active: 3,
        prefill_chunk: 2,
        parallelism: 2,
        ..ServeConfig::default()
    };
    let exact_before = metrics::counter("serve.bytes_moved.exact").value();
    let topk_before = metrics::counter("serve.bytes_moved.topk").value();
    let requests = vec![
        Request::new(0, prompt(0, 8), 12),
        Request::new(1, prompt(1, 8), 12).with_backend(AttentionKind::topk(6)),
        Request::new(2, prompt(2, 8), 12).with_backend(AttentionKind::h2o_budget(12, 4)),
    ];
    let (report, _) = serve_recorded(&AttentionKind::Exact, 64, cfg, requests);
    assert_eq!(report.outcomes.len(), 3);

    let snap = metrics::snapshot();
    let prom = prometheus_text(&snap);
    validate_prometheus(&prom).expect("exposition must validate");
    // Every instrumented subsystem shows up: engine, worker pool, paged KV
    // pool, per-backend traffic, and the recorders' own loss counters.
    for name in [
        "serve_admissions",
        "serve_retired",
        "serve_active",
        "serve_queued",
        "serve_ttft_ns",
        "pool_queue_depth",
        "pool_park_nanos",
        "pool_tasks_stolen",
        "pool_tasks_executed",
        "kv_blocks_total",
        "kv_blocks_free",
        "kv_blocks_used",
        "kv_fragmentation_bytes",
        "serve_bytes_moved_exact",
        "serve_bytes_moved_topk",
        "serve_bytes_moved_h2o_budget",
        "obs_dropped_events",
        "timeline_dropped_events",
    ] {
        assert!(prom.contains(name), "exposition is missing `{name}`");
    }
    // The traffic counters actually moved for the backends that served.
    assert!(metrics::counter("serve.bytes_moved.exact").value() > exact_before);
    assert!(metrics::counter("serve.bytes_moved.topk").value() > topk_before);
}
