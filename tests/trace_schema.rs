//! Schema validation of the exporters against a *real* captured decode —
//! the same capture path CI's `trace_decode` example exercises, but asserted
//! in-process: the Chrome trace must be valid JSON with non-negative
//! durations and properly nested B/E pairs per track, the JSONL stream must
//! match its line schema, and the capture must contain every stage the
//! decode hot path is instrumented with.
//!
//! One `#[test]` only: the recorder is process-global, and a sibling test
//! toggling it concurrently would corrupt the capture.

use lad::core::decoder::LadConfig;
use lad::core::pool::WorkerPool;
use lad::model::backend::AttentionKind;
use lad::model::batch::decode_batch_gemm;
use lad::model::config::ModelConfig;
use lad::model::transformer::{argmax, Model, Session};
use lad::obs::export::{chrome_trace, jsonl, validate_chrome_trace, validate_jsonl};
use lad::obs::json::{self, Value};
use lad::obs::StageBreakdown;
use std::sync::Arc;

fn prompt(salt: u32) -> Vec<u32> {
    (0..12u32).map(|i| (i * 29 + salt * 7 + 1) % 256).collect()
}

/// Stages the single-sequence LAD decode records on the main thread, plus
/// the batched engine's `batch.*` stages and the pool's task span.
const EXPECTED_STAGES: &[&str] = &[
    "session.step",
    "layer.qkv_proj",
    "layer.attn",
    "layer.out_proj",
    "layer.mlp",
    "session.logits",
    "lad.identify",
    "lad.mode_eval",
    "lad.window",
    "lad.mode_update",
    "batch.step",
    "batch.qkv_gemm",
    "batch.attn_fanout",
    "batch.out_gemm",
    "batch.mlp_gemm",
    "batch.logits_gemm",
    "pool.task",
];

#[test]
fn captured_decode_trace_matches_export_schemas() {
    let model = Model::random(ModelConfig::tiny("schema", 2, 64, 2), 5);
    let kind = AttentionKind::Lad(LadConfig::default());
    // Explicit two-worker pool: the global pool has zero workers on a
    // single-core host, and this test wants real worker tracks.
    let pool = Arc::new(WorkerPool::new(2));

    lad::obs::set_enabled(true);
    let mut session = Session::with_pool(&model, &kind, Arc::clone(&pool), 2);
    let mut logits = session.prefill(&prompt(0));
    for _ in 0..12 {
        logits = session.step(argmax(&logits));
    }
    let batched = decode_batch_gemm(&model, &kind, &[prompt(1), prompt(2)], 6, 2);
    lad::obs::set_enabled(false);
    let threads = lad::obs::drain();
    assert_eq!(batched.sequences.len(), 2);
    assert!(
        threads.len() >= 2,
        "expected main + worker tracks, got {}",
        threads.len()
    );

    // The library validators accept their own output...
    let trace = chrome_trace(&threads);
    let lines = jsonl(&threads);
    validate_chrome_trace(&trace).expect("captured Chrome trace must validate");
    validate_jsonl(&lines).expect("captured JSONL must validate");

    // ...and this test re-checks the Chrome trace independently, so a bug
    // pairing a lax emitter with an equally lax validator cannot hide: every
    // record is a JSON object carrying name/ph/pid/tid, every `E` closes the
    // matching `B` on its own track with a non-negative duration, and every
    // recording thread got a `thread_name` metadata record.
    let doc = json::parse(&trace).expect("Chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut named_tracks = std::collections::BTreeSet::new();
    let mut stacks: std::collections::BTreeMap<u64, Vec<(String, f64)>> = Default::default();
    let mut span_count = 0usize;
    for ev in events {
        let name = ev.get("name").and_then(Value::as_str).expect("name");
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Value::as_u64).expect("tid");
        assert_eq!(ev.get("pid").and_then(Value::as_u64), Some(1));
        match ph {
            "M" => {
                assert_eq!(name, "thread_name");
                named_tracks.insert(tid);
            }
            "B" | "E" | "i" => {
                let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
                assert!(ts >= 0.0, "negative timestamp on '{name}'");
                let stack = stacks.entry(tid).or_default();
                match ph {
                    "B" => stack.push((name.to_owned(), ts)),
                    "E" => {
                        let (open, begin) = stack.pop().expect("E with an open B");
                        assert_eq!(open, name, "E closes the wrong span");
                        assert!(ts >= begin, "negative duration on '{name}'");
                        span_count += 1;
                    }
                    _ => {}
                }
            }
            other => panic!("unexpected phase '{other}'"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "track {tid} left a span open");
        assert!(named_tracks.contains(tid), "track {tid} has no thread_name");
    }
    assert!(span_count > 0, "trace contains no completed spans");

    // JSONL: every line parses on its own and carries the full schema.
    for line in lines.lines() {
        let v = json::parse(line).expect("JSONL line is valid JSON");
        v.get("tid").and_then(Value::as_u64).expect("tid");
        let thread = v.get("thread").and_then(Value::as_str).expect("thread");
        assert!(!thread.is_empty());
        let name = v.get("name").and_then(Value::as_str).expect("name");
        assert!(!name.is_empty());
        let kind = v.get("kind").and_then(Value::as_str).expect("kind");
        assert!(matches!(kind, "B" | "E" | "I"), "bad kind '{kind}'");
        v.get("t_ns").and_then(Value::as_u64).expect("t_ns");
    }

    // The capture covers the full instrumented surface, and the per-stage
    // histograms built from it report ordered quantiles.
    let stages = StageBreakdown::from_events(&threads);
    for stage in EXPECTED_STAGES {
        assert!(
            stages.get(stage).is_some(),
            "stage '{stage}' missing from the captured decode"
        );
    }
    let step = stages.get("session.step").expect("checked above");
    assert!(step.count() >= 12, "fewer step spans than decode steps");
    assert!(step.p50() <= step.p95() && step.p95() <= step.p99());
}
