//! Cross-crate integration: real transformer QKV streams drive the error
//! audit (paper Sec. III-F) and the hardware tile engine (Sec. IV-B) —
//! the closest offline analogue of running LAD against real model traffic.

use lad::accel::modules::TileEngine;
use lad::core::audit::audit_stream;
use lad::core::decoder::LadConfig;
use lad::core::kv::KvCache;
use lad::core::reference;
use lad::math::pwl::PwlExp;
use lad::math::vector;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};

/// Decodes a prompt with QKV recording on, returning every head's stream.
fn real_streams(steps: usize) -> Vec<lad::core::QkvStream> {
    let model = Model::random(ModelConfig::tiny("streams", 2, 64, 4), 4242);
    let mut session = Session::new(&model, &AttentionKind::Exact);
    session.record_qkv();
    let prompt: Vec<u32> = (0..32).map(|i| (i * 17 + 11) % 256).collect();
    session.generate_greedy(&prompt, steps.saturating_sub(32));
    session.qkv_streams().expect("recording enabled").to_vec()
}

#[test]
fn audit_on_real_transformer_streams() {
    let streams = real_streams(96);
    let cfg = LadConfig::new(PwlExp::accurate_default());
    let mut worst_output_error = 0.0f64;
    for stream in streams.iter().take(3) {
        let report = audit_stream(&cfg, stream);
        assert_eq!(report.steps, stream.len());
        // The PWL floor stays tiny on real streams.
        assert!(
            report.mean_pwl_error < 0.02,
            "pwl floor {}",
            report.mean_pwl_error
        );
        worst_output_error = worst_output_error.max(report.mean_output_error);
        // False positives are harmless and false negatives bounded.
        assert!(
            report.false_negative_rate() < 0.25,
            "fn rate {} on real stream",
            report.false_negative_rate()
        );
    }
    assert!(
        worst_output_error < 0.2,
        "worst mean output error {worst_output_error}"
    );
}

#[test]
fn tile_engine_on_real_transformer_streams() {
    let streams = real_streams(80);
    let stream = &streams[0];
    let d = stream[0].0.len();
    let mut tile = TileEngine::new(d, PwlExp::accurate_default());
    let mut shadow = KvCache::new(d);
    let mut worst = 0.0f32;
    for (q, k, v) in stream {
        shadow.push(k, v);
        let result = tile.step(q, k, v);
        let exact = reference::exact_attention(q, &shadow);
        worst = worst.max(vector::relative_l2(&result.output, &exact));
    }
    assert!(worst < 0.25, "tile worst error {worst} on real stream");
    // The engine identified structure: some keys shared directional centers
    // or the cycle accounting stayed bounded.
    let last_n = stream.len();
    assert_eq!(tile.len(), last_n);
}

#[test]
fn streaming_window_baseline_degrades_on_long_contexts() {
    // Sanity for the extra baseline: window attention loses information the
    // window has scrolled past, unlike LAD.
    let model = Model::random(ModelConfig::tiny("window", 2, 48, 4), 77);
    let prompt: Vec<u32> = (0..64).map(|i| (i * 13 + 7) % 256).collect();
    let mut exact = Session::new(&model, &AttentionKind::Exact);
    let reference_tokens = exact.generate_greedy(&prompt, 48);

    let mut tight = Session::new(
        &model,
        &AttentionKind::StreamingWindow {
            sinks: 2,
            window: 16,
        },
    );
    let tight_tokens = tight.generate_greedy(&prompt, 48);
    let tight_agree = reference_tokens
        .iter()
        .zip(&tight_tokens)
        .filter(|(a, b)| a == b)
        .count();

    let mut lad = Session::new(&model, &AttentionKind::Lad(LadConfig::default()));
    let lad_tokens = lad.generate_greedy(&prompt, 48);
    let lad_agree = reference_tokens
        .iter()
        .zip(&lad_tokens)
        .filter(|(a, b)| a == b)
        .count();

    assert!(
        lad_agree >= tight_agree,
        "LAD ({lad_agree}/48) should track the original at least as well as \
         a 16-token window ({tight_agree}/48)"
    );
    assert!(lad_agree >= 40, "LAD agreement {lad_agree}/48");
}
