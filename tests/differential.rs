//! Differential decoding harness: pooled batch + head decoding vs the
//! sequential paths.
//!
//! LAD's claim (and this repo's tentpole invariant) is that *scheduling*
//! never changes *results*: decoding a batch on the shared two-level worker
//! pool — sequence-level tasks fanning head-level tasks onto the same queue
//! — must be token-exact against (a) the sequential LAD path and (b) the
//! exact-softmax reference decoder run sequentially, and must report
//! identical per-step `StepStats` (including `den_fallbacks`) up to the
//! scheduling metadata that `StepStats::algorithmic()` strips. The same
//! holds for the step-synchronous batched engine (`decode_batch_gemm`),
//! whose cross-sample blocked GEMMs carry a bit-exact ascending-`k`
//! accumulation contract: batching must never change a token or a stat.
//!
//! The harness decodes seeded random models under a grid of
//! {parallelism × batch size × window size × stream length} and asserts all
//! three equalities per configuration. At least one grid point is engineered
//! (coarse PWL partition, seed found by search) to exercise the
//! degenerate-denominator fallback path, so the fallback's cached
//! window-score slice is covered differentially too.
//!
//! Interpreting a mismatch: see `tests/README.md`.

use lad::core::decoder::LadConfig;
use lad::core::pool::WorkerPool;
use lad::core::stats::StepStats;
use lad::math::pwl::PwlExp;
use lad::model::backend::AttentionKind;
use lad::model::batch::{
    decode_batch, decode_batch_gemm, decode_batch_on, BatchSession, StepOutcome,
};
use lad::model::config::ModelConfig;
use lad::model::spec::{decode_speculative, SpecConfig};
use lad::model::transformer::{argmax, Model, Session};
use std::sync::Arc;

/// One grid point of the differential sweep.
struct DiffConfig {
    label: &'static str,
    /// OPT-style (LayerNorm + learned positions) instead of LLaMA-style.
    opt_style: bool,
    layers: usize,
    hidden: usize,
    heads: usize,
    model_seed: u64,
    batch: usize,
    prompt_len: usize,
    /// Greedy decode steps after the prompt.
    steps: usize,
    /// Pool fan-out width (batch and head level).
    parallelism: usize,
    /// LAD latest-window size.
    window: usize,
    /// PWL partition boundaries (`None` = the accurate default).
    boundaries: Option<&'static [f64]>,
    /// This grid point must hit the den-degeneration fallback at least once.
    expect_den_fallback: bool,
}

impl DiffConfig {
    fn model(&self) -> Model {
        let cfg = if self.opt_style {
            ModelConfig::tiny_opt("diff", self.layers, self.hidden, self.heads)
        } else {
            ModelConfig::tiny("diff", self.layers, self.hidden, self.heads)
        };
        Model::random(cfg, self.model_seed)
    }

    fn lad_config(&self) -> LadConfig {
        let pwl = match self.boundaries {
            Some(bounds) => PwlExp::with_boundaries(bounds).expect("valid grid boundaries"),
            None => PwlExp::accurate_default(),
        };
        LadConfig {
            window: self.window,
            ..LadConfig::new(pwl)
        }
    }

    /// Deterministic prompt of sample `s` (sample 0 reproduces the seed
    /// search that located the den-fallback grid point).
    fn prompt(&self, s: usize) -> Vec<u32> {
        (0..self.prompt_len)
            .map(|i| ((i as u64 * 37 + self.model_seed + s as u64 * 13) % 256) as u32)
            .collect()
    }

    fn prompts(&self) -> Vec<Vec<u32>> {
        (0..self.batch).map(|s| self.prompt(s)).collect()
    }
}

/// Tokens and the *full* per-step stats stream of one greedy decode.
struct DecodeOutcome {
    tokens: Vec<u32>,
    stats: Vec<StepStats>,
}

fn decode_all(session: &mut Session, prompt: &[u32], steps: usize) -> DecodeOutcome {
    let mut stats = Vec::new();
    let mut logits = Vec::new();
    for &t in prompt {
        logits = session.step(t);
        stats.extend(session.last_stats().iter().copied());
    }
    let mut tokens = Vec::with_capacity(steps);
    for _ in 0..steps {
        let next = argmax(&logits);
        tokens.push(next);
        logits = session.step(next);
        stats.extend(session.last_stats().iter().copied());
    }
    DecodeOutcome { tokens, stats }
}

fn assert_stats_match(label: &str, kind: &str, seq: &[StepStats], pooled: &[StepStats]) {
    assert_eq!(
        seq.len(),
        pooled.len(),
        "{label}/{kind}: stats stream length diverged"
    );
    for (i, (a, b)) in seq.iter().zip(pooled).enumerate() {
        assert_eq!(
            a.algorithmic(),
            b.algorithmic(),
            "{label}/{kind}: StepStats diverged at stream index {i}"
        );
    }
}

/// Runs every differential leg for one grid point over the given attention
/// backends; returns the total LAD `den_fallbacks` observed on the
/// sequential reference path (0 when no LAD backend is in `kinds`).
fn run_config_kinds(
    pool: &Arc<WorkerPool>,
    cfg: &DiffConfig,
    kinds: &[(&str, AttentionKind)],
) -> usize {
    let model = cfg.model();
    let prompts = cfg.prompts();
    let mut lad_fallbacks = 0usize;

    for (kind_name, kind) in kinds {
        // Leg 1 — per-sequence: pooled head fan-out vs inline sequential.
        let mut reference = Vec::new();
        for prompt in &prompts {
            let mut seq_session = Session::with_parallelism(&model, kind, 1);
            let seq = decode_all(&mut seq_session, prompt, cfg.steps);
            let mut pooled_session =
                Session::with_pool(&model, kind, Arc::clone(pool), cfg.parallelism);
            let pooled = decode_all(&mut pooled_session, prompt, cfg.steps);
            assert_eq!(
                seq.tokens, pooled.tokens,
                "{}/{kind_name}: pooled head fan-out diverged from sequential",
                cfg.label
            );
            assert_stats_match(cfg.label, kind_name, &seq.stats, &pooled.stats);
            if *kind_name == "lad" {
                lad_fallbacks += seq.stats.iter().map(|s| s.den_fallbacks).sum::<usize>();
            }
            reference.push(seq);
        }

        // Leg 2 — batch: sequence+head tasks on the shared pool vs the
        // sequential batch path vs the per-sequence reference.
        let sequential = decode_batch(&model, kind, &prompts, cfg.steps, 1);
        let pooled = decode_batch_on(pool, &model, kind, &prompts, cfg.steps, cfg.parallelism);
        let expected: Vec<Vec<u32>> = reference.iter().map(|o| o.tokens.clone()).collect();
        assert_eq!(
            sequential.sequences, expected,
            "{}/{kind_name}: sequential batch diverged from single sessions",
            cfg.label
        );
        assert_eq!(
            pooled.sequences, expected,
            "{}/{kind_name}: pooled batch diverged from single sessions",
            cfg.label
        );
        assert_stats_match(
            cfg.label,
            kind_name,
            &sequential.final_stats,
            &pooled.final_stats,
        );

        // Leg 3 — step-synchronous batched GEMM engine: cross-sample
        // matrix-matrix projections (inline and pool-fanned) vs the
        // per-sample reference, token- and stats-exact.
        let gemm_inline = decode_batch_gemm(&model, kind, &prompts, cfg.steps, 1);
        let gemm_fanned = decode_batch_gemm(&model, kind, &prompts, cfg.steps, cfg.parallelism);
        assert_eq!(
            gemm_inline.sequences, expected,
            "{}/{kind_name}: inline batched-GEMM decode diverged from single sessions",
            cfg.label
        );
        assert_eq!(
            gemm_fanned.sequences, expected,
            "{}/{kind_name}: fanned batched-GEMM decode diverged from single sessions",
            cfg.label
        );
        assert_stats_match(
            cfg.label,
            kind_name,
            &sequential.final_stats,
            &gemm_inline.final_stats,
        );
        assert_stats_match(
            cfg.label,
            kind_name,
            &sequential.final_stats,
            &gemm_fanned.final_stats,
        );
        // Every prompt in this harness has the same length, so the batched
        // engine crosses exactly one barrier per consumed token.
        assert_eq!(
            gemm_inline.gemm.sync_barriers,
            cfg.prompt_len + cfg.steps,
            "{}/{kind_name}: barrier count off",
            cfg.label
        );
        assert!(
            gemm_inline.gemm.gemm_calls >= gemm_inline.gemm.sync_barriers,
            "{}/{kind_name}: batched decode reported no GEMM calls",
            cfg.label
        );
    }

    lad_fallbacks
}

/// The exact + LAD legs of one grid point, with the den-fallback
/// expectation enforced.
fn run_config(pool: &Arc<WorkerPool>, cfg: &DiffConfig) -> usize {
    let kinds: [(&str, AttentionKind); 2] = [
        ("exact", AttentionKind::Exact),
        ("lad", AttentionKind::Lad(cfg.lad_config())),
    ];
    let lad_fallbacks = run_config_kinds(pool, cfg, &kinds);
    if cfg.expect_den_fallback {
        assert!(
            lad_fallbacks > 0,
            "{}: grid point was engineered to hit the den fallback but never did",
            cfg.label
        );
    }
    lad_fallbacks
}

/// The default grid: small models, every {parallelism × batch × window ×
/// stream length} axis exercised, 16 configurations. One point (seed found
/// by search over coarse PWL partitions) drives `den_fallbacks >= 1`.
fn default_grid() -> Vec<DiffConfig> {
    let base = DiffConfig {
        label: "",
        opt_style: false,
        layers: 2,
        hidden: 32,
        heads: 2,
        model_seed: 0,
        batch: 1,
        prompt_len: 4,
        steps: 8,
        parallelism: 2,
        window: 16,
        boundaries: None,
        expect_den_fallback: false,
    };
    vec![
        // parallelism axis
        DiffConfig {
            label: "p2-b1-w16-s8",
            model_seed: 10,
            ..base
        },
        DiffConfig {
            label: "p4-b1-w16-s8",
            model_seed: 11,
            parallelism: 4,
            ..base
        },
        DiffConfig {
            label: "p8-b2-w16-s8",
            model_seed: 12,
            parallelism: 8,
            batch: 2,
            ..base
        },
        DiffConfig {
            label: "p3-b1-w16-s12",
            model_seed: 13,
            parallelism: 3,
            steps: 12,
            ..base
        },
        // batch axis
        DiffConfig {
            label: "p2-b2-w16-s8",
            model_seed: 14,
            batch: 2,
            ..base
        },
        DiffConfig {
            label: "p2-b3-w16-s6",
            model_seed: 15,
            batch: 3,
            steps: 6,
            ..base
        },
        DiffConfig {
            label: "p4-b4-w16-s6",
            model_seed: 16,
            parallelism: 4,
            batch: 4,
            steps: 6,
            ..base
        },
        // window axis
        DiffConfig {
            label: "p2-b1-w2-s10",
            model_seed: 17,
            window: 2,
            steps: 10,
            ..base
        },
        DiffConfig {
            label: "p4-b2-w4-s8",
            model_seed: 18,
            parallelism: 4,
            batch: 2,
            window: 4,
            ..base
        },
        DiffConfig {
            label: "p2-b2-w8-s8",
            model_seed: 19,
            batch: 2,
            window: 8,
            ..base
        },
        // stream-length axis
        DiffConfig {
            label: "p2-b1-w4-s24",
            model_seed: 20,
            window: 4,
            steps: 24,
            ..base
        },
        DiffConfig {
            label: "p4-b1-w16-s20",
            model_seed: 21,
            parallelism: 4,
            steps: 20,
            prompt_len: 6,
            ..base
        },
        // model-shape variations
        DiffConfig {
            label: "opt-p2-b2-w16-s8",
            model_seed: 22,
            opt_style: true,
            batch: 2,
            ..base
        },
        DiffConfig {
            label: "opt-p4-b1-w4-s10",
            model_seed: 23,
            opt_style: true,
            parallelism: 4,
            window: 4,
            steps: 10,
            ..base
        },
        DiffConfig {
            label: "h4-p4-b2-w16-s8",
            model_seed: 24,
            hidden: 64,
            heads: 4,
            parallelism: 4,
            batch: 2,
            ..base
        },
        // den-fallback point: coarse 2-interval partition, seed 7, found by
        // search — the sequential LAD path hits den_fallbacks >= 1 here.
        DiffConfig {
            label: "denfb-p4-b1-w2-s48",
            model_seed: 7,
            parallelism: 4,
            window: 2,
            prompt_len: 8,
            steps: 48,
            boundaries: Some(&[-4.0, 0.0]),
            expect_den_fallback: true,
            ..base
        },
    ]
}

#[test]
fn differential_grid() {
    let pool = Arc::new(WorkerPool::new(3));
    let grid = default_grid();
    assert!(grid.len() >= 16, "grid shrank below the acceptance floor");
    let mut fallbacks = 0usize;
    for cfg in &grid {
        fallbacks += run_config(&pool, cfg);
    }
    assert!(fallbacks > 0, "no grid point exercised the den fallback");
}

/// Backend-zoo leg: the scheduling contract extends verbatim to the sparse
/// backends — top-k score selection and budget-based H2O eviction must be
/// oblivious to pooled head fan-out, batch membership and the batched-GEMM
/// engine on the same 16-point grid the exact/LAD sweep runs (den-fallback
/// partition point included; its coarse PWL only parameterises LAD, but the
/// long 48-step stream exercises many evictions). Stats equality covers the
/// new traffic counters: `keys_scored`, `keys_read`, `bytes_moved` and
/// `evictions` all survive `StepStats::algorithmic()`.
#[test]
fn backend_zoo_differential_grid() {
    let pool = Arc::new(WorkerPool::new(3));
    let grid = default_grid();
    assert!(grid.len() >= 16, "grid shrank below the acceptance floor");
    let kinds: [(&str, AttentionKind); 2] = [
        ("topk", AttentionKind::topk(6)),
        ("h2o", AttentionKind::h2o_budget(12, 4)),
    ];
    for cfg in &grid {
        run_config_kinds(&pool, cfg, &kinds);
    }
}

/// Speculative leg — acceptance equivalence: draft/verify decoding with a
/// training-free drafter must produce *exactly* the greedy sequential
/// stream, whatever the draft depth K or drafter policy, on every grid
/// point (exact + LAD backends, den-fallback partition included). The
/// verifier only ever commits a token that is the argmax of logits
/// conditioned on committed rows, so acceptance can change the *cost* of a
/// decode but never a token; K = 0 must degenerate to one plain one-row
/// step per token.
#[test]
fn speculative_decode_matches_greedy_grid() {
    let grid = default_grid();
    assert!(grid.len() >= 16, "grid shrank below the acceptance floor");
    for cfg in &grid {
        let model = cfg.model();
        let prompt = cfg.prompt(0);
        let kinds: [(&str, AttentionKind); 2] = [
            ("exact", AttentionKind::Exact),
            ("lad", AttentionKind::Lad(cfg.lad_config())),
        ];
        for (kind_name, kind) in &kinds {
            let mut session = Session::new(&model, kind);
            let expected = session.generate_greedy(&prompt, cfg.steps);
            for k in [0usize, 1, 2, 4, 8] {
                // Alternate drafter policies across the K axis so both the
                // recency table and the n-gram pool face every grid point.
                let spec = if k % 2 == 0 {
                    SpecConfig::recency(k)
                } else {
                    SpecConfig::ngram(k)
                };
                let report = decode_speculative(&model, kind, &prompt, cfg.steps, &spec);
                assert_eq!(
                    report.tokens, expected,
                    "{}/{kind_name}/k{k}: speculative decode diverged from greedy",
                    cfg.label
                );
                assert!(
                    report.accepted <= report.drafted,
                    "{}/{kind_name}/k{k}: accepted more than was drafted",
                    cfg.label
                );
                if k == 0 {
                    // Degenerate case: no drafts, one round and one forward
                    // step per generated token — the plain decode loop.
                    assert_eq!(report.drafted, 0, "{}/{kind_name}: k=0 drafted", cfg.label);
                    assert_eq!(
                        report.rounds, cfg.steps,
                        "{}/{kind_name}: k=0 must run one round per token",
                        cfg.label
                    );
                    assert_eq!(
                        report.forward_steps, cfg.steps,
                        "{}/{kind_name}: k=0 must run one forward per token",
                        cfg.label
                    );
                } else {
                    // Every verify round commits at least the bonus token,
                    // so rounds never exceed generated tokens.
                    assert!(
                        report.rounds <= report.tokens.len(),
                        "{}/{kind_name}/k{k}: more rounds than tokens",
                        cfg.label
                    );
                }
            }
        }
    }
}

/// SIMD microkernel leg — the tentpole invariant of the kernel dispatch
/// layer: the AVX2 f32 microkernel vectorises across packed *rows* and
/// accumulates each output element in the same ascending-`k` order as the
/// scalar reference, so forcing either kernel must produce bit-identical
/// tokens and stats on every grid point, exact and LAD backends alike.
/// On hosts without AVX2+F16C `Kernel::Simd` degrades to scalar and the leg
/// passes vacuously (the bit-exactness claim is about the SIMD box CI runs
/// on). Kernel overrides are thread-local and the batched-GEMM engine runs
/// its GEMMs on the stepping thread, so `parallelism = 1` pins the whole
/// decode to the forced kernel.
#[test]
fn simd_kernel_matches_scalar_on_grid() {
    use lad::math::{with_kernel, Kernel};
    if !Kernel::Simd.available() {
        eprintln!("simd_kernel_matches_scalar_on_grid: no AVX2+F16C; leg is vacuous");
    }
    let grid = default_grid();
    assert!(grid.len() >= 16, "grid shrank below the acceptance floor");
    for cfg in &grid {
        let model = cfg.model();
        let prompts = cfg.prompts();
        let kinds: [(&str, AttentionKind); 4] = [
            ("exact", AttentionKind::Exact),
            ("lad", AttentionKind::Lad(cfg.lad_config())),
            ("topk", AttentionKind::topk(6)),
            ("h2o", AttentionKind::h2o_budget(12, 4)),
        ];
        for (kind_name, kind) in &kinds {
            let scalar = with_kernel(Kernel::Scalar, || {
                decode_batch_gemm(&model, kind, &prompts, cfg.steps, 1)
            });
            let simd = with_kernel(Kernel::Simd, || {
                decode_batch_gemm(&model, kind, &prompts, cfg.steps, 1)
            });
            assert_eq!(
                scalar.sequences, simd.sequences,
                "{}/{kind_name}: SIMD kernel changed decoded tokens",
                cfg.label
            );
            assert_stats_match(cfg.label, kind_name, &scalar.final_stats, &simd.final_stats);
        }
    }
}

/// Speculative × SIMD leg: draft/verify decoding (K = 0 degenerate and K = 4
/// with both drafter policies) under the forced SIMD kernel must emit the
/// token stream of the scalar-kernel greedy decode — the verify batches go
/// through the batched GEMM path, so this pins speculation's exact-rollback
/// contract on top of the kernel-dispatch contract.
#[test]
fn speculative_decode_is_token_identical_under_simd_kernel() {
    use lad::math::{with_kernel, Kernel};
    let grid = default_grid();
    assert!(grid.len() >= 16, "grid shrank below the acceptance floor");
    for cfg in &grid {
        let model = cfg.model();
        let prompt = cfg.prompt(0);
        let kinds: [(&str, AttentionKind); 4] = [
            ("exact", AttentionKind::Exact),
            ("lad", AttentionKind::Lad(cfg.lad_config())),
            ("topk", AttentionKind::topk(6)),
            ("h2o", AttentionKind::h2o_budget(12, 4)),
        ];
        for (kind_name, kind) in &kinds {
            let expected = with_kernel(Kernel::Scalar, || {
                Session::new(&model, kind).generate_greedy(&prompt, cfg.steps)
            });
            for k in [0usize, 4] {
                for spec in [SpecConfig::recency(k), SpecConfig::ngram(k)] {
                    let report = with_kernel(Kernel::Simd, || {
                        decode_speculative(&model, kind, &prompt, cfg.steps, &spec)
                    });
                    assert_eq!(
                        report.tokens, expected,
                        "{}/{kind_name}/k{k}: speculative decode under the SIMD \
                         kernel diverged from the scalar greedy stream",
                        cfg.label
                    );
                }
            }
        }
    }
}

/// Traffic-counter invariant leg: each backend's analytic `bytes_moved`
/// (reported in `StepStats` from per-step arithmetic) must equal what a
/// shadow byte meter at the KV-arena read sites actually observes. The
/// meter is thread-local, so the decode is pinned inline (`parallelism 1`);
/// every backend — exact, LAD (approximate identification, correction
/// cache, den fallback included), top-k and H2O — is swept over a slice of
/// the grid covering the LLaMA point, the wider-head point and the
/// den-fallback point.
#[test]
fn stats_bytes_moved_matches_traffic_meter() {
    use lad::core::kv::{reset_traffic_bytes, traffic_bytes};
    let grid = default_grid();
    let legs: Vec<&DiffConfig> = grid
        .iter()
        .filter(|cfg| {
            matches!(
                cfg.label,
                "p2-b1-w16-s8" | "h4-p4-b2-w16-s8" | "denfb-p4-b1-w2-s48"
            )
        })
        .collect();
    assert_eq!(legs.len(), 3, "traffic leg lost a grid point");

    for cfg in legs {
        let model = cfg.model();
        let prompt = cfg.prompt(0);
        let kinds: [(&str, AttentionKind); 4] = [
            ("exact", AttentionKind::Exact),
            ("lad", AttentionKind::Lad(cfg.lad_config())),
            ("topk", AttentionKind::topk(6)),
            ("h2o", AttentionKind::h2o_budget(12, 4)),
        ];
        for (kind_name, kind) in &kinds {
            let mut session = Session::with_parallelism(&model, kind, 1);
            let mut logits = Vec::new();
            let mut feed: Vec<u32> = prompt.clone();
            for step in 0..prompt.len() + cfg.steps {
                let t = if step < feed.len() {
                    feed[step]
                } else {
                    let next = argmax(&logits);
                    feed.push(next);
                    next
                };
                reset_traffic_bytes();
                logits = session.step(t);
                let metered = traffic_bytes();
                let reported: u64 = session
                    .last_stats()
                    .iter()
                    .map(|s| s.bytes_moved as u64)
                    .sum();
                assert_eq!(
                    metered, reported,
                    "{}/{kind_name}: step {step} analytic bytes_moved diverged \
                     from the shadow traffic meter",
                    cfg.label
                );
            }
        }
    }
}

/// Empty-step leg: `BatchSession::step(&[])` is the documented idle no-op
/// (the serving engine leans on it for arrival gaps). Idle steps sprinkled
/// through a decode must return `StepOutcome::Idle`, advance nothing, and
/// leave every subsequent token and logit bit-identical to a run without
/// them.
#[test]
fn empty_steps_are_idle_and_invisible() {
    let cfg = &default_grid()[0];
    let model = cfg.model();
    let kind = AttentionKind::Lad(cfg.lad_config());
    let prompts = cfg.prompts();

    let run = |idle_every: Option<usize>| {
        let mut session = BatchSession::new(&model, &kind, cfg.batch, cfg.parallelism);
        let mut fed: Vec<Vec<u32>> = prompts.clone();
        let mut streams: Vec<Vec<u32>> = vec![Vec::new(); cfg.batch];
        let max_len = fed.iter().map(Vec::len).max().unwrap();
        for t in 0..max_len + cfg.steps {
            if let Some(every) = idle_every {
                if t % every == 0 {
                    assert_eq!(
                        session.step(&[]),
                        StepOutcome::Idle,
                        "empty step must report Idle"
                    );
                }
            }
            let tokens: Vec<(usize, u32)> = (0..cfg.batch)
                .filter(|&s| t < fed[s].len())
                .map(|s| (s, fed[s][t]))
                .collect();
            if tokens.is_empty() {
                break;
            }
            let active = tokens.len();
            assert_eq!(
                session.step(&tokens),
                StepOutcome::Advanced { active },
                "non-empty step must report its active count"
            );
            for (row, &(s, _)) in tokens.iter().enumerate() {
                if t + 1 >= fed[s].len() && streams[s].len() < cfg.steps {
                    let next = argmax(session.logits(row));
                    streams[s].push(next);
                    fed[s].push(next);
                }
            }
        }
        streams
    };

    let without_idle = run(None);
    let with_idle = run(Some(3));
    assert_eq!(
        without_idle, with_idle,
        "idle no-op steps perturbed decoded streams"
    );
}

/// Recorder leg: the observability layer must never perturb decoding. The
/// same stream is decoded with the recorder in its default (disabled) state,
/// with it enabled (spans actually recorded), and again after it has been
/// enabled and disabled — all three must agree token-for-token and on every
/// `algorithmic()` stat. Runs a slice of the default grid covering the
/// LLaMA-style, OPT-style and den-fallback points, plus the batched-GEMM
/// engine (so the `batch.*` spans are exercised under the toggle too).
#[test]
fn recorder_toggle_never_changes_results() {
    let pool = Arc::new(WorkerPool::new(3));
    let grid = default_grid();
    let legs: Vec<&DiffConfig> = grid
        .iter()
        .filter(|cfg| {
            matches!(
                cfg.label,
                "p2-b2-w16-s8" | "opt-p2-b2-w16-s8" | "denfb-p4-b1-w2-s48"
            )
        })
        .collect();
    assert_eq!(legs.len(), 3, "recorder leg lost a grid point");

    for cfg in legs {
        let model = cfg.model();
        let kind = AttentionKind::Lad(cfg.lad_config());
        let prompts = cfg.prompts();
        let run = |pool: &Arc<WorkerPool>| {
            let mut session = Session::with_pool(&model, &kind, Arc::clone(pool), cfg.parallelism);
            let single = decode_all(&mut session, &prompts[0], cfg.steps);
            let batched = decode_batch_gemm(&model, &kind, &prompts, cfg.steps, cfg.parallelism);
            (single, batched)
        };

        lad::obs::set_enabled(false);
        let (base, base_batch) = run(&pool);

        lad::obs::set_enabled(true);
        let (on, on_batch) = run(&pool);
        lad::obs::set_enabled(false);
        let recorded = lad::obs::drain();
        assert!(
            recorded.iter().any(|t| !t.events.is_empty()),
            "{}: enabled recorder captured nothing",
            cfg.label
        );

        let (off_again, off_again_batch) = run(&pool);

        for (state, (single, batched)) in [
            ("enabled", (&on, &on_batch)),
            ("re-disabled", (&off_again, &off_again_batch)),
        ] {
            assert_eq!(
                base.tokens, single.tokens,
                "{}: recorder {state} changed decoded tokens",
                cfg.label
            );
            assert_stats_match(cfg.label, state, &base.stats, &single.stats);
            assert_eq!(
                base_batch.sequences, batched.sequences,
                "{}: recorder {state} changed batched-GEMM tokens",
                cfg.label
            );
            assert_stats_match(
                cfg.label,
                state,
                &base_batch.final_stats,
                &batched.final_stats,
            );
        }
    }
}

/// The long grid: longer streams (past the window by a large margin), wider
/// batches, and the den-fallback partition under batch + pool pressure.
/// Heavy — run with `cargo test --release -- --ignored` (the CI slow job).
#[test]
#[ignore = "long-stream differential grid; run with --ignored in release"]
fn differential_grid_long_streams() {
    let pool = Arc::new(WorkerPool::new(3));
    let base = DiffConfig {
        label: "",
        opt_style: false,
        layers: 2,
        hidden: 32,
        heads: 2,
        model_seed: 0,
        batch: 1,
        prompt_len: 8,
        steps: 150,
        parallelism: 4,
        window: 16,
        boundaries: None,
        expect_den_fallback: false,
    };
    let grid = vec![
        DiffConfig {
            label: "long-p4-b1-w16-s150",
            model_seed: 30,
            ..base
        },
        DiffConfig {
            label: "long-p8-b2-w16-s120",
            model_seed: 31,
            parallelism: 8,
            batch: 2,
            steps: 120,
            ..base
        },
        DiffConfig {
            label: "long-p2-b4-w4-s100",
            model_seed: 32,
            parallelism: 2,
            batch: 4,
            window: 4,
            steps: 100,
            ..base
        },
        DiffConfig {
            label: "long-p4-b6-w8-s80",
            model_seed: 33,
            batch: 6,
            window: 8,
            steps: 80,
            ..base
        },
        DiffConfig {
            label: "long-h4-p4-b2-w16-s100",
            model_seed: 34,
            hidden: 64,
            heads: 4,
            batch: 2,
            steps: 100,
            ..base
        },
        DiffConfig {
            label: "long-opt-p4-b2-w16-s100",
            model_seed: 35,
            opt_style: true,
            batch: 2,
            steps: 100,
            ..base
        },
        DiffConfig {
            label: "long-denfb-p4-b2-w2-s120",
            model_seed: 7,
            batch: 2,
            window: 2,
            steps: 120,
            boundaries: Some(&[-4.0, 0.0]),
            expect_den_fallback: true,
            ..base
        },
    ];
    for cfg in &grid {
        run_config(&pool, cfg);
    }
}
