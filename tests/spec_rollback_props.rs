//! Property tests of speculative rollback over the sparse backends.
//!
//! The speculative-decoding contract (PR 7) says a rejected draft leaves no
//! trace: after `rollback_sample` the head state must be bit-identical to
//! never having seen the rejected rows. For the sparse backends this is a
//! sharper claim than for exact attention — top-k selection depends on the
//! whole score history and H2O's cumulative-attention book *and* alive mask
//! mutate on every step (draft rows can trigger evictions that the rollback
//! must undo exactly).
//!
//! The property: drive one sample through arbitrary accept/reject
//! interleavings — random draft lengths, random accepted prefixes — with a
//! parallel reference session fed only the committed tokens, and the
//! speculating session's logits must stay bit-identical to the reference at
//! every committed row. Alongside, a paged [`BlockPool`] mirrors the
//! engine's reserve/truncate/mark-dead choreography and its block
//! accounting must stay exact (free + held == total, eviction reclaims
//! included) through every round, with all blocks returned at release.

use lad::model::backend::AttentionKind;
use lad::model::batch::BatchSession;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};
use lad_accel::paged::BlockPool;
use proptest::prelude::*;

/// Deterministic LCG driving the draft tokens and accept/reject choices.
fn next(rng: &mut u64, bound: usize) -> usize {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*rng >> 33) as usize) % bound
}

proptest! {
    #[test]
    fn random_interleavings_restore_sparse_state_bitwise(
        seed in 0u64..2000,
        kind_sel in 0u8..2,
        plen in 1usize..5,
        rounds in 1usize..8,
    ) {
        let cfg = ModelConfig::tiny("rbprop", 1, 16, 2);
        let model = Model::random(cfg.clone(), seed);
        let kind = if kind_sel == 0 {
            AttentionKind::topk(4)
        } else {
            AttentionKind::h2o_budget(8, 3)
        };
        let prompt: Vec<u32> = (0..plen)
            .map(|i| ((i as u64 * 37 + seed * 11) % 256) as u32)
            .collect();

        let mut spec = BatchSession::dynamic(&model, &kind, 1);
        let slot = spec.add_sample();
        let mut reference = Session::with_parallelism(&model, &kind, 1);

        // Pool mirror: admitted at prompt length, grown/truncated per round
        // the way the serving engine does it.
        let block_bytes =
            cfg.layers * 2 * cfg.hidden * 2 * lad_accel::paged::BLOCK_TOKENS;
        let mut pool = BlockPool::new(&cfg, 8 * block_bytes);
        let id = pool.admit(plen).expect("pool admits the prompt");

        let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut pending = 0u32;
        for (i, &t) in prompt.iter().enumerate() {
            spec.step(&[(slot, t)]);
            let ref_logits = reference.step(t);
            if i + 1 == prompt.len() {
                // Prefill logits must already agree.
                prop_assert_eq!(spec.logits(0), &ref_logits[..]);
                pending = lad::model::transformer::argmax(&ref_logits);
            }
        }

        let mut committed_total = 0usize;
        for _round in 0..rounds {
            let draft_len = next(&mut rng, 4);
            let mut run = vec![pending];
            for _ in 0..draft_len {
                run.push(next(&mut rng, 256) as u32);
            }
            // Engine choreography: reserve the mandatory row plus the draft
            // rows before the step.
            for _ in 0..run.len() {
                prop_assert!(pool.append_token(id), "pool sized to never run dry");
            }
            spec.step_runs(&[(slot, &run)]);

            // Random accepted prefix: commit 1..=1+draft_len rows.
            let committed = 1 + next(&mut rng, draft_len + 1);
            let mut ref_logits = Vec::new();
            for &t in run.iter().take(committed) {
                ref_logits = reference.step(t);
            }
            // Every committed row's logits must be bit-identical to the
            // reference that never saw the rejected tail.
            prop_assert_eq!(spec.logits(committed - 1), &ref_logits[..]);
            if run.len() > 1 {
                spec.rollback_sample(slot, committed);
            }

            // Pool choreography: return the rejected rows, then fold the
            // sample's evictions into the block accounting.
            let current = pool.sequence_tokens(id).expect("sequence is live");
            let target = current - run.len() + committed;
            if target < current {
                pool.truncate(id, target);
            }
            for pos in spec.dead_positions(slot) {
                pool.mark_dead(id, pos);
            }
            prop_assert_eq!(
                pool.sequence_tokens(id),
                Some(plen + committed_total + committed)
            );
            prop_assert_eq!(
                pool.free_blocks() + pool.blocks_held(id).expect("live"),
                pool.total_blocks()
            );
            committed_total += committed;
            pending = next(&mut rng, 256) as u32;
        }

        // Release returns exactly the blocks still held, eviction reclaims
        // already accounted.
        pool.release(id);
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
    }
}
