//! Facade crate for the LAD (Locality Aware Decoding) reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`math`] — numerical substrate (fp16, PWL exp, linear algebra).
//! * [`core`] — the LAD attention algorithm itself.
//! * [`model`] — the transformer substrate with pluggable attention backends.
//! * [`trace`] — synthetic attention-trace generation and statistics.
//! * [`accel`] — the LAD accelerator simulator and GPU baselines.
//! * [`eval`] — ROUGE / perplexity / dataset tooling.
//! * [`obs`] — zero-cost-when-off tracing spans, latency histograms and
//!   Chrome-trace / JSONL exporters.
//! * [`serve`] — continuous-batching serving engine (FIFO admission,
//!   chunked prefill, recompute preemption, TTFT/ITL/goodput metrics).

pub use lad_accel as accel;
pub use lad_core as core;
pub use lad_eval as eval;
pub use lad_math as math;
pub use lad_model as model;
pub use lad_obs as obs;
pub use lad_serve as serve;
pub use lad_trace as trace;
