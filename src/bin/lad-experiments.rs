//! `lad-experiments` — run the paper's experiments from the command line and
//! export machine-readable CSV tables.
//!
//! ```sh
//! cargo run --release -p lad --bin lad-experiments -- throughput results/
//! cargo run --release -p lad --bin lad-experiments -- all results/
//! ```
//!
//! Subcommands: `locality`, `throughput`, `energy`, `fidelity`, `all`.
//! The second argument is the output directory (default `results`).

use std::path::Path;
use std::process::ExitCode;

use lad::accel::config::AccelConfig;
use lad::accel::gpu::GpuBaseline;
use lad::accel::perf::{evaluate_best_batch, Platform};
use lad::accel::workload::{stability_for, workload_stats};
use lad::core::decoder::LadConfig;
use lad::core::locality::LocalityAnalyzer;
use lad::eval::datasets::generation_benchmarks;
use lad::eval::quality::generation_fidelity;
use lad::eval::report::Table;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::Model;
use lad::trace::{ScoreTrace, TraceConfig};

const KV_LENGTHS: [usize; 6] = [512, 1024, 2048, 2560, 3072, 4096];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let command = args.get(1).map(String::as_str).unwrap_or("all");
    let out_dir = args.get(2).map(String::as_str).unwrap_or("results");
    if let Err(err) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {err}");
        return ExitCode::FAILURE;
    }
    let out = Path::new(out_dir);
    let result = match command {
        "locality" => run_locality(out),
        "throughput" => run_throughput(out),
        "energy" => run_energy(out),
        "fidelity" => run_fidelity(out),
        "all" => run_locality(out)
            .and_then(|()| run_throughput(out))
            .and_then(|()| run_energy(out))
            .and_then(|()| run_fidelity(out)),
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("usage: lad-experiments [locality|throughput|energy|fidelity|all] [out-dir]");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("experiment failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn save(table: &Table, out: &Path) -> std::io::Result<()> {
    let path = out.join(format!("{}.csv", table.name()));
    table.write_csv(&path)?;
    println!("wrote {} ({} rows)", path.display(), table.len());
    Ok(())
}

/// Fig. 2(b): top-1/top-2 interval probabilities per KV length.
fn run_locality(out: &Path) -> std::io::Result<()> {
    let mut table = Table::new("locality", &["kv_len", "top1", "top2", "adjacent"]);
    for n in KV_LENGTHS {
        let mut cfg = TraceConfig::calibrated(n - 96, 96);
        cfg.stability = stability_for(n);
        let pwl = cfg.pwl.clone();
        let trace = ScoreTrace::generate(&cfg);
        let mut analyzer = LocalityAnalyzer::new(pwl);
        for row in trace.rows() {
            analyzer.observe_step(row);
        }
        let report = analyzer.report(48);
        table.push_row(vec![
            n.to_string(),
            format!("{:.4}", report.top1),
            format!("{:.4}", report.top2),
            format!("{:.4}", report.top2_adjacent),
        ]);
    }
    save(&table, out)
}

fn platforms() -> Vec<Platform> {
    vec![
        Platform::Gpu(GpuBaseline::Vllm),
        Platform::Gpu(GpuBaseline::Qserve),
        Platform::Gpu(GpuBaseline::H2o),
        Platform::Gpu(GpuBaseline::LadGpu),
        Platform::Lad(AccelConfig::lad_1_5()),
        Platform::Lad(AccelConfig::lad_2_5()),
        Platform::Lad(AccelConfig::lad_3_5()),
    ]
}

/// Fig. 7: attention and end-to-end throughput per platform.
fn run_throughput(out: &Path) -> std::io::Result<()> {
    let mut table = Table::new(
        "throughput",
        &[
            "model",
            "kv_len",
            "platform",
            "batch",
            "attn_tok_s",
            "e2e_tok_s",
        ],
    );
    sweep(|model, n, stats| {
        for platform in platforms() {
            if let Platform::Gpu(baseline) = &platform {
                if !baseline.supports(model) {
                    continue;
                }
            }
            let r = evaluate_best_batch(&platform, model, n, stats);
            table.push_row(vec![
                model.name.clone(),
                n.to_string(),
                r.platform.clone(),
                r.batch.to_string(),
                format!("{:.1}", r.attn_tokens_per_s),
                format!("{:.1}", r.e2e_tokens_per_s),
            ]);
        }
    });
    save(&table, out)
}

/// Fig. 9/10: energy per token and LAD energy breakdown.
fn run_energy(out: &Path) -> std::io::Result<()> {
    let mut table = Table::new(
        "energy",
        &[
            "model",
            "kv_len",
            "platform",
            "attn_j_per_tok",
            "e2e_j_per_tok",
            "hbm_j",
            "sram_j",
            "compute_j",
        ],
    );
    sweep(|model, n, stats| {
        for platform in platforms() {
            if let Platform::Gpu(baseline) = &platform {
                if !baseline.supports(model) {
                    continue;
                }
            }
            let r = evaluate_best_batch(&platform, model, n, stats);
            table.push_row(vec![
                model.name.clone(),
                n.to_string(),
                r.platform.clone(),
                format!("{:.6}", r.attn_energy_j / r.batch as f64),
                format!("{:.6}", r.e2e_energy_j / r.batch as f64),
                format!("{:.6}", r.energy.hbm_j),
                format!("{:.6}", r.energy.sram_j),
                format!("{:.6}", r.energy.compute_j),
            ]);
        }
    });
    save(&table, out)
}

fn sweep(mut f: impl FnMut(&ModelConfig, usize, &lad::core::stats::StatsSummary)) {
    for model in ModelConfig::paper_models() {
        for n in KV_LENGTHS {
            if n <= model.max_seq {
                let stats = workload_stats(n, 0x1ad);
                f(&model, n, &stats);
            }
        }
    }
}

/// Table I: generation fidelity of each backend vs the original model.
fn run_fidelity(out: &Path) -> std::io::Result<()> {
    let mut table = Table::new(
        "fidelity",
        &[
            "family",
            "dataset",
            "backend",
            "rouge1",
            "rouge2",
            "rougeL",
            "rougeLsum",
        ],
    );
    let models = [
        (
            "OPT-style",
            Model::random(ModelConfig::tiny_opt("opt-mini", 2, 64, 4), 301),
        ),
        (
            "LLaMA-style",
            Model::random(ModelConfig::tiny("llama-mini", 2, 64, 4), 302),
        ),
    ];
    for (family, model) in &models {
        for bench in generation_benchmarks(model.config().vocab as u32, 4, 77) {
            let backends: Vec<(&str, AttentionKind)> = vec![
                ("LAD", AttentionKind::Lad(LadConfig::default())),
                ("Qserve-KV4", AttentionKind::QserveKv4),
                ("H2O", AttentionKind::h2o_default()),
            ];
            for (name, kind) in backends {
                let scores = generation_fidelity(model, &kind, &bench);
                table.push_row(vec![
                    family.to_string(),
                    bench.name.clone(),
                    name.to_string(),
                    format!("{:.4}", scores.rouge1),
                    format!("{:.4}", scores.rouge2),
                    format!("{:.4}", scores.rouge_l),
                    format!("{:.4}", scores.rouge_lsum),
                ]);
            }
        }
    }
    save(&table, out)
}
